"""The fleet scoring service: queue -> bucket -> batched GON ascent.

Many lightweight simulation workers feed one scorer::

    worker 0 ──┐                              ┌─> reply queue 0
    worker 1 ──┤   requests    ┌───────────┐  ├─> reply queue 1
       ...     ├─────────────> │  scorer   │──┤      ...
    worker N ──┘  (one queue)  │  loop     │  └─> reply queue N
                               └───────────┘
                 drain up to a micro-batch window,
                 bucket by (model, n_hosts, gamma, steps),
                 one generate_metrics_batch / forward_batch
                 per bucket, replies routed by client id

Each request carries a whole candidate stack (a tabu neighbourhood's
cache misses); the scorer drains the request queue for a short
micro-batching window (bounded by ``max_batch_elements`` so latency
stays bounded), groups compatible requests into buckets and answers
every bucket with batched GON evaluations on the single resident model
replica -- the weights live once in shared memory instead of once per
worker.

Replies are keyed by ``(client, request)``; within a request, results
are positional in the submitted stack.  Two execution policies:

* ``merge_requests=False`` (default): each request's stack runs as its
  own vectorized ascent.  Stack shapes are then *identical* to what an
  in-process scorer would run, which keeps fleet campaign records
  bit-identical to serial execution (BLAS gemm results vary in the
  last ulp with the leading dimension, so merging cannot be bitwise).
* ``merge_requests=True``: all stacks in a bucket concatenate into one
  ascent -- maximum consolidation, scores equal to the exact path
  within ~1e-15 (see ``benchmarks/bench_surrogate.py``); decisions are
  score-argmins, so campaign results almost always still coincide,
  but the bitwise guarantee is waived.

Per-client weight overlays
--------------------------
A client whose replica fine-tunes past generation 0 no longer matches
the published weights, but it does not have to leave the consolidated
stream: it ships its full packed state (``nn/serialization.pack_state``)
as an :class:`OverlayUpdate`, and the service installs a *copy-on-write
overlay* -- a private replica mounted over the shipped buffer, resident
next to the generation-0 base model.  Requests carry the client's
``generation``; the bucket key extends with ``(generation, owner)`` so

* generation-0 requests from any client keep sharing the base bucket
  (and may merge under ``merge_requests``);
* two clients at *different* generations never share a bucket;
* overlay weights are private per client, so generation > 0 buckets
  are additionally keyed by the owning client -- only requests from
  the same diverged client may merge with each other.

Queue FIFO ordering makes the protocol race-free: a client installs
its overlay (one fire-and-forget message) before submitting any
generation-N request, and the service applies messages in arrival
order, so an ascent can never observe a stale replica.  Overlays are
evicted when their client signs off (:class:`ClientDone`).
"""

from __future__ import annotations

import queue as queue_module
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..core.features import GONInput
from ..core.gon import GONDiscriminator
from ..core.scoring import validate_backend
from ..core.surrogate import SurrogateResult, generate_metrics_batch
from ..core.training import TrainingConfig, fine_tune
from ..nn.serialization import pack_state, unpack_state
from ..telemetry import SIZE_EDGES, MetricsRegistry, merge_snapshots

__all__ = [
    "AscentRequest",
    "ConfidenceRequest",
    "OverlayUpdate",
    "ClientDone",
    "StatsUpdate",
    "LeaseRequest",
    "LeaseGrant",
    "CellDone",
    "Ping",
    "WorkerLost",
    "ServiceStats",
    "GONScoringService",
    "ScoringClient",
    "FleetScorer",
]

# Micro-batcher telemetry (process registry).  The classic
# :class:`ServiceStats` dataclass remains the stable legacy view; the
# registry mirrors it so the merged fleet snapshot (``/status``,
# ``--record-json``) carries the same counters under ``service.*``.
_DRAIN_SPAN = _telemetry.span("service.drain")
_DISPATCH_SPAN = _telemetry.span("service.dispatch")
_REQUESTS = _telemetry.counter("service.requests")
_ELEMENTS = _telemetry.counter("service.elements")
_BATCHES = _telemetry.counter("service.batches")
_MERGED_ELEMENTS = _telemetry.counter("service.merged_elements")
_OVERLAY_INSTALLS = _telemetry.counter("service.overlay_installs")
_OVERLAY_EVICTIONS = _telemetry.counter("service.overlay_evictions")
_OVERLAY_ELEMENTS = _telemetry.counter("service.overlay_elements")
_STATS_UPDATES = _telemetry.counter("service.stats_updates")
_BATCH_ELEMENTS = _telemetry.histogram("service.batch_elements", SIZE_EDGES)
_BUCKET_OCCUPANCY = _telemetry.histogram("service.bucket_occupancy", SIZE_EDGES)
_WINDOW_GAUGE = _telemetry.gauge("service.window_seconds")
_FUSED_ELEMENTS = _telemetry.counter("service.fused_elements")

# Elastic-fleet liveness telemetry (see the coordinator module for the
# lease-queue counters ``fleet.leases`` / ``fleet.cells_requeued`` /
# ``fleet.cells_poisoned`` / ``fleet.duplicate_completions``).
_WORKERS_LOST = _telemetry.counter("fleet.workers_lost")
_REPLIES_DROPPED = _telemetry.counter("fleet.replies_dropped")
_HEARTBEAT_AGE = _telemetry.gauge("fleet.heartbeat_age_max_seconds")


def _generation_bucket(client_id: int, generation: int) -> tuple:
    """The bucket-key suffix isolating diverged clients.

    Generation 0 is the shared published weight set: every client's
    requests are compatible and the owner slot collapses to -1.  Past
    generation 0 the weights are a per-client overlay, so the owning
    client enters the key -- two clients at different generations (or
    two diverged clients at the same generation) never share a bucket.
    """
    return (generation, client_id if generation else -1)


@dataclass(frozen=True)
class AscentRequest:
    """One batched eq.-1 ascent over a ``[B, n, F]`` candidate stack."""

    client_id: int
    request_id: int
    model_key: str
    metrics: np.ndarray      # [B, n, n_m_features] warm starts
    schedules: np.ndarray    # [B, n, n_s_features]
    adjacencies: np.ndarray  # [B, n, n]
    gamma: float
    max_steps: int
    #: The client replica's fine-tune generation; > 0 scores on that
    #: client's installed weight overlay instead of the base model.
    generation: int = 0

    @property
    def bucket(self) -> tuple:
        return (
            "ascent", self.model_key, self.metrics.shape[1],
            self.gamma, self.max_steps,
            *_generation_bucket(self.client_id, self.generation),
        )

    @property
    def n_elements(self) -> int:
        return int(self.metrics.shape[0])


@dataclass(frozen=True)
class ConfidenceRequest:
    """Plain ``D(M, S, G)`` forward over a sample stack (no ascent)."""

    client_id: int
    request_id: int
    model_key: str
    metrics: np.ndarray
    schedules: np.ndarray
    adjacencies: np.ndarray
    generation: int = 0

    @property
    def bucket(self) -> tuple:
        return (
            "confidence", self.model_key, self.metrics.shape[1],
            *_generation_bucket(self.client_id, self.generation),
        )

    @property
    def n_elements(self) -> int:
        return int(self.metrics.shape[0])


@dataclass(frozen=True)
class OverlayUpdate:
    """A diverged client shipping its packed fine-tuned state.

    ``buffer``/``manifest`` come from ``nn/serialization.pack_state``
    on the client's post-fine-tune state dict; the roundtrip is
    bit-exact, which is what keeps overlay-scored fleet records
    bit-identical to worker-local scoring.  Fire-and-forget: queue
    FIFO ordering guarantees the install lands before any request at
    this generation.
    """

    client_id: int
    model_key: str
    generation: int
    buffer: np.ndarray
    manifest: Tuple[Tuple[str, Tuple[int, ...], str, int], ...]

    #: Overlay installs never consume micro-batch window budget.
    n_elements: int = 0


@dataclass(frozen=True)
class ClientDone:
    """A worker signing off; the service exits once every client has."""

    client_id: int


@dataclass(frozen=True)
class StatsUpdate:
    """A worker shipping its telemetry snapshot (the STATS frame).

    ``snapshot`` is a :meth:`repro.telemetry.MetricsRegistry.snapshot`
    plain dict (JSON-safe, rides in the wire frame's header).  Workers
    ship one after every completed cell; the service keeps the *latest*
    snapshot per client (snapshots are cumulative) and merges them with
    its own registry into the fleet-wide view behind ``/status`` --
    see :meth:`GONScoringService.merged_telemetry`.  Fire-and-forget,
    never consumes micro-batch window budget, and carries no arrays.
    """

    client_id: int
    snapshot: Dict[str, dict]

    n_elements: int = 0


@dataclass(frozen=True)
class LeaseRequest:
    """A worker asking the coordinator for its next campaign cell."""

    client_id: int
    request_id: int

    n_elements: int = 0


@dataclass(frozen=True)
class LeaseGrant:
    """The coordinator's answer to a :class:`LeaseRequest`.

    ``cell_id >= 0`` grants that cell (``attempt`` is 1-based; > 1
    means a retry after a revoked lease).  ``cell_id < 0`` with
    ``drained=False`` means "no cell right now, poll again" (the queue
    is empty but other leases are outstanding and may yet be revoked).
    ``drained=True`` ends the worker's campaign: every cell is either
    completed or quarantined -- the ``poisoned`` tuple reports the
    quarantined cell ids so workers can surface them to the campaign
    parent.
    """

    request_id: int
    cell_id: int
    attempt: int = 0
    drained: bool = False
    poisoned: Tuple[int, ...] = ()

    n_elements: int = 0


@dataclass(frozen=True)
class CellDone:
    """Fire-and-forget: a worker reporting its leased cell finished.

    The record itself rides the campaign results queue (it never
    touches the scoring wire); this frame only settles the lease.
    """

    client_id: int
    cell_id: int

    n_elements: int = 0


@dataclass(frozen=True)
class Ping:
    """Worker heartbeat: refreshes last-seen, otherwise a no-op.

    Sent from a worker-side daemon thread between cells so that a
    worker deep in a long simulation still proves liveness.  Pings do
    **not** count as transport activity for ``--max-idle`` purposes --
    a fleet that only ever pings is idle.
    """

    client_id: int

    n_elements: int = 0


@dataclass(frozen=True)
class WorkerLost:
    """Service-internal notice that a client died before signing off.

    Enqueued by the transport layer (TCP reader threads on EOF, or the
    campaign parent's process watchdog for queue transports) -- never
    sent by workers and never crosses the wire.  The service revokes
    the dead client's leases and evicts its overlays; the message is
    idempotent and ignored for clients that already signed off.
    """

    client_id: int
    reason: str = ""

    n_elements: int = 0


@dataclass(frozen=True)
class AscentReply:
    request_id: int
    metrics: np.ndarray      # [B, n, F] converged M* stack
    confidences: np.ndarray  # [B]
    n_steps: np.ndarray      # [B]
    converged: np.ndarray    # [B] bool


@dataclass(frozen=True)
class ConfidenceReply:
    request_id: int
    confidences: np.ndarray


@dataclass
class ServiceStats:
    """Scorer-side telemetry (read after :meth:`serve` returns)."""

    n_requests: int = 0
    n_elements: int = 0
    n_batches: int = 0
    #: Elements that ran in a batch merged from >= 2 requests.
    merged_elements: int = 0
    #: Per-batch element counts (the consolidation histogram).
    batch_sizes: List[int] = field(default_factory=list)
    #: Per-client weight overlays installed (including re-installs when
    #: a client fine-tunes again and replaces its previous overlay).
    overlay_installs: int = 0
    #: Overlays dropped because their owning client signed off.
    overlay_evictions: int = 0
    #: Stacked elements scored on an overlay replica (generation > 0).
    overlay_elements: int = 0
    #: Last micro-batch flush window the adaptive sizer chose (equals
    #: the configured ``window_seconds`` when adaptation is off).
    window_seconds: float = 0.0
    #: Elements scored in cross-bucket fused ascents (fast backends
    #: only: requests with different gamma/max_steps fused into one
    #: kernel call via per-element hyper-parameter vectors).
    fused_elements: int = 0


class GONScoringService:
    """Single-process scorer answering a fleet's GON evaluations.

    Parameters
    ----------
    models:
        ``model_key -> GONDiscriminator`` -- one resident replica per
        published weight set (fleet campaigns use one per scenario).
    request_queue / reply_queues:
        Any queue objects with the stdlib ``get(timeout)/put`` surface
        (``multiprocessing.Queue`` across processes, ``queue.Queue``
        in-process for tests).
    window_seconds:
        Micro-batching window ceiling: after the first request arrives,
        how long to keep draining for batch-mates before scoring.  With
        ``adaptive_window`` (default) the *actual* flush window is sized
        from the observed request inter-arrival EWMA -- roughly four
        arrival gaps, clamped to ``[window_seconds / 20,
        window_seconds]`` -- so a chatty fleet flushes early instead of
        idling out the full fixed window.
    max_batch_elements:
        Stop draining once this many stacked elements are pending
        (keeps worst-case latency and peak memory bounded).
    merge_requests:
        Concatenate compatible stacks into one ascent per bucket (see
        module docstring for the exactness trade-off).
    scorer_backend:
        Ascent engine, one of ``repro.core.scoring.BACKENDS``.  The
        default ``"exact"`` keeps the autodiff oracle (bit-identical
        records).  ``"fast"``/``"fast32"`` score ascents on the
        graph-free :class:`repro.core.fastscore.FastGONKernel` (per
        resident replica, re-exported when an overlay installs), one
        kernel call per request -- same batch shapes as the exact
        policy, so the backend's parity tier carries over unchanged.
        Combined with ``merge_requests`` the kernel additionally fuses
        same-shape ascent requests *across* gamma/max_steps buckets
        into one call using per-element hyper-parameter vectors --
        strictly more consolidation than the exact merged policy, under
        the same last-ulp waiver (concatenation changes BLAS leading
        dimensions).  Confidence requests always stay on the exact
        model path.
    """

    def __init__(
        self,
        models: Dict[str, GONDiscriminator],
        request_queue,
        reply_queues: Dict[int, object],
        window_seconds: float = 0.002,
        max_batch_elements: int = 512,
        merge_requests: bool = False,
        poll_seconds: float = 0.5,
        scorer_backend: str = "exact",
        adaptive_window: bool = True,
        coordinator=None,
        heartbeat_timeout: float = 30.0,
    ) -> None:
        self.models = models
        self.request_queue = request_queue
        self.reply_queues = reply_queues
        self.window_seconds = window_seconds
        self.max_batch_elements = max_batch_elements
        self.merge_requests = merge_requests
        self.poll_seconds = poll_seconds
        self.scorer_backend = validate_backend(scorer_backend)
        self.adaptive_window = adaptive_window
        #: EWMA of request inter-arrival seconds (adaptive window input).
        self._interarrival_ewma: Optional[float] = None
        self._last_arrival: Optional[float] = None
        #: ``(model_key, generation, owner) -> FastGONKernel`` for the
        #: fast backends; invalidated when an overlay (re)installs.
        self._kernels: Dict[tuple, object] = {}
        self.stats = ServiceStats()
        self.stats.window_seconds = window_seconds
        #: Copy-on-write per-client replicas installed by
        #: :class:`OverlayUpdate`: ``(client_id, model_key) ->
        #: (generation, replica)``.  Base models stay untouched.
        self._overlays: Dict[Tuple[int, str], Tuple[int, GONDiscriminator]] = {}
        #: Latest :class:`StatsUpdate` snapshot per client, guarded for
        #: the status-endpoint thread (see :meth:`merged_telemetry`).
        self.worker_snapshots: Dict[int, dict] = {}
        self._stats_lock = threading.Lock()
        #: Clients that have signed off so far (live progress view).
        self.signed_off: set = set()
        #: Elastic mode: the :class:`~repro.serving.coordinator.
        #: CellCoordinator` holding the campaign's lease queue.  When
        #: None (the default) the service runs the legacy roster loop:
        #: serve until every pre-registered reply queue signs off, and
        #: any reply failure is loud and fatal.
        self.coordinator = coordinator
        #: Elastic mode: seconds without any frame from a client before
        #: it is declared dead and its leases are revoked; 0 disables
        #: the timeout (EOF/watchdog notices still apply).
        self.heartbeat_timeout = float(heartbeat_timeout)
        #: Clients declared dead (heartbeat timeout, EOF notice, or
        #: reply-delivery failure).  Their leases were revoked and
        #: their later messages are dropped.
        self.lost: set = set()
        #: ``client_id -> monotonic`` of the last frame seen (elastic).
        self._last_seen: Dict[int, float] = {}
        #: Optional hook called with a client id when the service marks
        #: it lost -- fleets wire this to ``TcpTransport.close_client``
        #: so a wedged-but-connected socket is actively torn down.
        self.on_worker_lost: Optional[Callable[[int], None]] = None
        #: Chaos injection state (``POST /inject``): per-client reply
        #: delay in seconds, and one-shot reply drops.
        self.reply_delays: Dict[int, float] = {}
        self._drop_next_reply: set = set()
        self.replies_dropped = 0

    # ------------------------------------------------------------------
    def merged_telemetry(self) -> dict:
        """Fleet-wide snapshot: this process's registry + every worker.

        Associative/commutative merge (counters sum, histograms add
        bucket-wise), so the result is independent of worker arrival
        order.  Safe to call from another thread mid-:meth:`serve`.
        """
        with self._stats_lock:
            snaps = list(self.worker_snapshots.values())
        return merge_snapshots(_telemetry.snapshot(), *snaps)

    # ------------------------------------------------------------------
    def serve(self, abort: Optional[Callable[[], bool]] = None) -> ServiceStats:
        """Score until the campaign is over.

        Legacy roster mode (``coordinator is None``): exit once every
        pre-registered reply queue has signed off; any worker death is
        loud and fatal.  Elastic mode (a
        :class:`~repro.serving.coordinator.CellCoordinator` is
        attached): exit once the cell queue is drained *and* every
        client ever seen has either signed off or been declared lost --
        membership is open, deaths revoke leases instead of aborting.

        ``abort`` is polled while the queue is idle; returning True
        raises (used to detect dead workers -- legacy -- or a fully
        dead fleet -- elastic -- instead of hanging).
        """
        while not self._serve_complete():
            try:
                message = self.request_queue.get(timeout=self.poll_seconds)
            except queue_module.Empty:
                self._check_liveness()
                if abort is not None and abort():
                    raise RuntimeError(
                        "scoring service aborted: worker died before "
                        "signing off"
                    )
                continue
            self._observe_arrival()
            pending = [message]
            with _DRAIN_SPAN.time():
                deadline = time.monotonic() + self._flush_window()
                while self._pending_elements(pending) < self.max_batch_elements:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        pending.append(self.request_queue.get(timeout=remaining))
                        self._observe_arrival()
                    except queue_module.Empty:
                        break
            self.signed_off.update(self._dispatch(pending))
            self._check_liveness()
        return self.stats

    def _serve_complete(self) -> bool:
        if self.coordinator is None:
            return len(self.signed_off) >= len(self.reply_queues)
        unresolved = (
            set(self._last_seen) - self.signed_off - self.lost
        )
        return self.coordinator.finished and not unresolved

    # ------------------------------------------------------------------
    # Elastic liveness
    # ------------------------------------------------------------------
    def _note_alive(self, client_id: int) -> None:
        self._last_seen[client_id] = time.monotonic()

    def _check_liveness(self) -> None:
        """Declare clients dead after ``heartbeat_timeout`` of silence."""
        if self.coordinator is None:
            return
        now = time.monotonic()
        max_age = 0.0
        for client_id, last in list(self._last_seen.items()):
            if client_id in self.signed_off or client_id in self.lost:
                continue
            age = now - last
            max_age = max(max_age, age)
            if self.heartbeat_timeout > 0 and age > self.heartbeat_timeout:
                self._mark_lost(
                    client_id, f"no heartbeat for {age:.1f}s"
                )
        _HEARTBEAT_AGE.set(max_age)

    def heartbeat_ages(self) -> Dict[int, float]:
        """Seconds since each live client's last frame (status view)."""
        now = time.monotonic()
        return {
            client_id: now - last
            for client_id, last in self._last_seen.items()
            if client_id not in self.signed_off and client_id not in self.lost
        }

    def _mark_lost(self, client_id: int, reason: str = "") -> None:
        """Revoke a dead client's leases and evict its overlays.

        Idempotent, and a no-op for clients that already signed off
        (their work is settled; a late death notice carries no news).
        """
        if client_id in self.lost or client_id in self.signed_off:
            return
        self.lost.add(client_id)
        _WORKERS_LOST.inc()
        self._evict_overlays(client_id)
        if self.coordinator is not None:
            requeued, poisoned = self.coordinator.release_worker(client_id)
            detail = f"worker {client_id} lost ({reason or 'unknown'})"
            if requeued:
                detail += f"; re-queued cells {requeued}"
            if poisoned:
                detail += f"; quarantined poisoned cells {poisoned}"
            print(f"[repro.serving] {detail}", file=sys.stderr)
        if self.on_worker_lost is not None:
            try:
                self.on_worker_lost(client_id)
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Chaos injection (POST /inject)
    # ------------------------------------------------------------------
    def inject_delay(self, client_id: int, seconds: float) -> None:
        """Delay every future reply to ``client_id`` by ``seconds``."""
        if seconds <= 0:
            self.reply_delays.pop(int(client_id), None)
        else:
            self.reply_delays[int(client_id)] = float(seconds)

    def inject_drop_next_reply(self, client_id: int) -> None:
        """Silently drop the next reply addressed to ``client_id``."""
        self._drop_next_reply.add(int(client_id))

    # -- adaptive micro-batch window -----------------------------------
    #: EWMA smoothing for inter-arrival observations.
    _EWMA_ALPHA = 0.2
    #: The flush window covers roughly this many arrival gaps.
    _WINDOW_GAIN = 4.0
    #: Lower clamp as a fraction of the configured ceiling.
    _WINDOW_FLOOR = 1.0 / 20.0

    def _observe_arrival(self) -> None:
        """Fold one request arrival into the inter-arrival EWMA.

        Gaps are clamped to the configured window ceiling before
        folding, so an idle stretch relaxes the window back toward the
        ceiling instead of blowing the average up unboundedly.
        """
        now = time.monotonic()
        if self._last_arrival is not None:
            gap = min(now - self._last_arrival, self.window_seconds)
            if self._interarrival_ewma is None:
                self._interarrival_ewma = gap
            else:
                self._interarrival_ewma += self._EWMA_ALPHA * (
                    gap - self._interarrival_ewma
                )
        self._last_arrival = now

    def _flush_window(self) -> float:
        """The flush window for this drain (EWMA-sized, clamped)."""
        window = self.window_seconds
        if self.adaptive_window and self._interarrival_ewma is not None:
            window = min(
                max(
                    self._WINDOW_GAIN * self._interarrival_ewma,
                    self.window_seconds * self._WINDOW_FLOOR,
                ),
                self.window_seconds,
            )
        self.stats.window_seconds = window
        _WINDOW_GAUGE.set(window)
        return window

    @staticmethod
    def _pending_elements(pending: Sequence) -> int:
        return sum(getattr(m, "n_elements", 0) for m in pending)

    # ------------------------------------------------------------------
    # Per-client weight overlays
    # ------------------------------------------------------------------
    def _install_overlay(self, update: OverlayUpdate) -> None:
        """Mount a diverged client's shipped weights as a replica.

        The replica's parameters are zero-copy views into the shipped
        buffer (the service only scores, never trains, so read-only
        views suffice); installing at a newer generation replaces the
        client's previous overlay.
        """
        base = self.models[update.model_key]
        replica = base.clone_architecture(np.random.default_rng(0))
        replica.load_state_dict(
            unpack_state(update.buffer, list(update.manifest)), copy=False
        )
        self._overlays[(update.client_id, update.model_key)] = (
            update.generation, replica,
        )
        # Any fast kernel exported from this client's previous overlay
        # is stale now; the next request re-exports from the replica.
        for key in [
            k for k in self._kernels
            if k[0] == update.model_key and k[2] == update.client_id
        ]:
            del self._kernels[key]
        self.stats.overlay_installs += 1
        _OVERLAY_INSTALLS.inc()

    def _evict_overlays(self, client_id: int) -> None:
        """Drop every overlay owned by a disconnecting client."""
        owned = [key for key in self._overlays if key[0] == client_id]
        for key in owned:
            del self._overlays[key]
        for key in [k for k in self._kernels if k[2] == client_id]:
            del self._kernels[key]
        self.stats.overlay_evictions += len(owned)
        _OVERLAY_EVICTIONS.add(len(owned))

    def _resolve_model(self, request) -> GONDiscriminator:
        """The replica a request scores on: base weights or overlay."""
        generation = getattr(request, "generation", 0)
        if generation == 0:
            return self.models[request.model_key]
        entry = self._overlays.get((request.client_id, request.model_key))
        if entry is None or entry[0] != generation:
            raise RuntimeError(
                f"client {request.client_id} requested generation "
                f"{generation} of {request.model_key!r} but the installed "
                f"overlay is {entry[0] if entry else 'absent'}: overlay "
                "protocol violated (updates must precede requests)"
            )
        self.stats.overlay_elements += request.n_elements
        _OVERLAY_ELEMENTS.add(request.n_elements)
        return entry[1]

    def _kernel_for(self, request, model: GONDiscriminator):
        """The cached fast kernel for a request's resolved replica."""
        key = (
            request.model_key,
            *_generation_bucket(request.client_id, request.generation),
        )
        kernel = self._kernels.get(key)
        if kernel is None:
            from ..core.fastscore import FastGONKernel

            dtype = "float32" if self.scorer_backend == "fast32" else "float64"
            kernel = FastGONKernel.from_model(model, dtype=dtype)
            self._kernels[key] = kernel
        return kernel

    # ------------------------------------------------------------------
    def _dispatch(self, pending: Sequence) -> set:
        """Bucket the drained messages, score, reply; returns sign-offs.

        Messages apply in arrival order, so an :class:`OverlayUpdate`
        drained alongside its client's follow-up requests installs
        before any bucket is scored.
        """
        signed_off: set = set()
        buckets: "Dict[tuple, List]" = {}
        for message in pending:
            if isinstance(message, WorkerLost):
                self._mark_lost(message.client_id, message.reason)
                continue
            client_id = getattr(message, "client_id", None)
            if client_id is not None:
                if client_id in self.lost:
                    # Ghost traffic from a client already declared
                    # dead (its leases were revoked); dropping it keeps
                    # revoked-and-rerun cells single-sourced.
                    continue
                self._note_alive(client_id)
            if isinstance(message, ClientDone):
                signed_off.add(message.client_id)
                self._evict_overlays(message.client_id)
                if self.coordinator is not None:
                    # Signing off while still holding a lease means the
                    # worker errored mid-cell and cleaned up on the way
                    # out -- treat the lease like a death so the cell
                    # is re-queued instead of deadlocking the drain.
                    self.coordinator.release_worker(message.client_id)
                continue
            if isinstance(message, LeaseRequest):
                self._grant_lease(message)
                continue
            if isinstance(message, CellDone):
                if self.coordinator is not None:
                    self.coordinator.complete(
                        message.cell_id, message.client_id
                    )
                continue
            if isinstance(message, Ping):
                continue
            if isinstance(message, OverlayUpdate):
                self._install_overlay(message)
                continue
            if isinstance(message, StatsUpdate):
                with self._stats_lock:
                    self.worker_snapshots[message.client_id] = message.snapshot
                _STATS_UPDATES.inc()
                continue
            buckets.setdefault(message.bucket, []).append(message)
            self.stats.n_requests += 1
            self.stats.n_elements += message.n_elements
            _REQUESTS.inc()
            _ELEMENTS.add(message.n_elements)

        with _DISPATCH_SPAN.time():
            if self.scorer_backend != "exact" and self.merge_requests:
                # Cross-request fusing concatenates stacks, and BLAS
                # results vary in the last ulp with the leading
                # dimension -- so fusing lives behind the same
                # ``merge_requests`` knob that already waives the
                # bitwise record guarantee for the exact policy.
                buckets = self._fuse_ascent_buckets(buckets)
            for bucket_key, requests in buckets.items():
                kind = bucket_key[0]
                _BUCKET_OCCUPANCY.observe(len(requests))
                if kind == "fused":
                    self._run_fused(requests)
                elif self.merge_requests and len(requests) > 1:
                    self._run_merged(kind, requests)
                elif self.scorer_backend != "exact" and kind == "ascent":
                    # Fast backend, no merging: one kernel call per
                    # request keeps batch shapes identical to the
                    # exact policy, so the bitwise tier holds.
                    for request in requests:
                        self._run_fused([request])
                else:
                    for request in requests:
                        self._run_exact(kind, request)
        return signed_off

    def _fuse_ascent_buckets(self, buckets: "Dict[tuple, List]") -> "Dict[tuple, List]":
        """Regroup ascent buckets for fast backends + ``merge_requests``.

        The fast kernel takes per-element gamma/max_steps vectors, so
        requests that differ *only* in those hyper-parameters can share
        one fused ascent: the bucket key collapses from ``(model, n,
        gamma, steps, generation, owner)`` to ``(model, n, generation,
        owner)``.  Only called when ``merge_requests`` is on -- fusing
        concatenates stacks, which moves scores by ~1 ulp (BLAS leading
        dimension), the exact trade-off that knob opts into.  Confidence
        buckets pass through untouched (they stay on the exact model
        path).
        """
        fused: "Dict[tuple, List]" = {}
        for bucket_key, requests in buckets.items():
            if bucket_key[0] != "ascent":
                fused.setdefault(bucket_key, []).extend(requests)
                continue
            request = requests[0]
            key = (
                "fused", request.model_key, request.metrics.shape[1],
                *_generation_bucket(request.client_id, request.generation),
            )
            fused.setdefault(key, []).extend(requests)
        return fused

    def _grant_lease(self, request: LeaseRequest) -> None:
        if self.coordinator is None:
            raise RuntimeError(
                f"client {request.client_id} requested a cell lease but "
                "this service has no coordinator (roster mode)"
            )
        cell_id, attempt, drained = self.coordinator.lease(request.client_id)
        if drained:
            grant = LeaseGrant(
                request_id=request.request_id,
                cell_id=-1,
                drained=True,
                poisoned=tuple(sorted(self.coordinator.poisoned)),
            )
        elif cell_id is None:
            grant = LeaseGrant(request_id=request.request_id, cell_id=-1)
        else:
            grant = LeaseGrant(
                request_id=request.request_id,
                cell_id=int(cell_id),
                attempt=int(attempt),
            )
        self._send_reply(request.client_id, grant)

    def _reply(self, request, reply) -> None:
        self._send_reply(request.client_id, reply)

    def _send_reply(self, client_id: int, reply) -> None:
        """Deliver one reply, applying chaos injections.

        In roster mode delivery failures propagate (loud failure, the
        legacy contract).  In elastic mode a failed send means the
        client is gone: it is marked lost (revoking its leases) and the
        service keeps running for the rest of the fleet.
        """
        if client_id in self._drop_next_reply:
            self._drop_next_reply.discard(client_id)
            self.replies_dropped += 1
            _REPLIES_DROPPED.inc()
            return
        delay = self.reply_delays.get(client_id, 0.0)
        if delay > 0:
            time.sleep(delay)
        try:
            self.reply_queues[client_id].put(reply)
        except Exception as error:
            if self.coordinator is None:
                raise
            self._mark_lost(client_id, f"reply delivery failed: {error}")

    # -- exact policy: one evaluation per request ----------------------
    def _run_exact(self, kind: str, request) -> None:
        self.stats.n_batches += 1
        self.stats.batch_sizes.append(request.n_elements)
        _BATCHES.inc()
        _BATCH_ELEMENTS.observe(request.n_elements)
        model = self._resolve_model(request)
        if kind == "ascent":
            results = generate_metrics_batch(
                model,
                request.schedules,
                request.adjacencies,
                init_metrics=request.metrics,
                gamma=request.gamma,
                max_steps=request.max_steps,
            )
            self._reply(request, _ascent_reply(request.request_id, results))
        else:
            scores = model.forward_batch(
                request.metrics, request.schedules, request.adjacencies
            ).data.copy()
            self._reply(
                request, ConfidenceReply(request.request_id, scores)
            )

    # -- fast backends: one fused kernel ascent per shape group --------
    def _run_fused(self, requests: List) -> None:
        """Score a same-shape ascent group on the fast kernel.

        Hyper-parameters ride as per-element vectors (``np.repeat``
        over each request's stack), so one kernel call covers requests
        that the exact policy would have scored bucket by bucket.
        Replies chunk back out positionally, exactly like the merged
        policy.
        """
        self.stats.n_batches += 1
        model = self._resolve_model(requests[0])
        for request in requests[1:]:
            self.stats.overlay_elements += (
                request.n_elements if request.generation else 0
            )
        kernel = self._kernel_for(requests[0], model)
        counts = [request.n_elements for request in requests]
        metrics = np.concatenate([r.metrics for r in requests])
        schedules = np.concatenate([r.schedules for r in requests])
        adjacencies = np.concatenate([r.adjacencies for r in requests])
        gamma = np.repeat([r.gamma for r in requests], counts)
        max_steps = np.repeat([r.max_steps for r in requests], counts)
        total = int(metrics.shape[0])
        self.stats.batch_sizes.append(total)
        _BATCHES.inc()
        _BATCH_ELEMENTS.observe(total)
        if len(requests) > 1:
            self.stats.fused_elements += total
            _FUSED_ELEMENTS.add(total)
        results = kernel.ascent(
            schedules,
            adjacencies,
            init_metrics=metrics,
            gamma=gamma,
            max_steps=max_steps,
        )
        start = 0
        for request in requests:
            chunk = results[start:start + request.n_elements]
            start += request.n_elements
            self._reply(request, _ascent_reply(request.request_id, chunk))

    # -- merged policy: one evaluation per bucket ----------------------
    def _run_merged(self, kind: str, requests: List) -> None:
        # Bucket keys carry (generation, owner), so every request here
        # resolves to the same replica -- merging across overlays is
        # impossible by construction.
        self.stats.n_batches += 1
        model = self._resolve_model(requests[0])
        for request in requests[1:]:
            self.stats.overlay_elements += (
                request.n_elements if request.generation else 0
            )
        metrics = np.concatenate([r.metrics for r in requests])
        schedules = np.concatenate([r.schedules for r in requests])
        adjacencies = np.concatenate([r.adjacencies for r in requests])
        self.stats.batch_sizes.append(int(metrics.shape[0]))
        self.stats.merged_elements += int(metrics.shape[0])
        _BATCHES.inc()
        _BATCH_ELEMENTS.observe(int(metrics.shape[0]))
        _MERGED_ELEMENTS.add(int(metrics.shape[0]))
        if kind == "ascent":
            results = generate_metrics_batch(
                model,
                schedules,
                adjacencies,
                init_metrics=metrics,
                gamma=requests[0].gamma,
                max_steps=requests[0].max_steps,
            )
            start = 0
            for request in requests:
                chunk = results[start:start + request.n_elements]
                start += request.n_elements
                self._reply(request, _ascent_reply(request.request_id, chunk))
        else:
            scores = model.forward_batch(
                metrics, schedules, adjacencies
            ).data.copy()
            start = 0
            for request in requests:
                chunk = scores[start:start + request.n_elements]
                start += request.n_elements
                self._reply(
                    request, ConfidenceReply(request.request_id, chunk)
                )


def _ascent_reply(
    request_id: int, results: Sequence[SurrogateResult]
) -> AscentReply:
    return AscentReply(
        request_id=request_id,
        metrics=np.stack([r.metrics for r in results]),
        confidences=np.array([r.confidence for r in results]),
        n_steps=np.array([r.n_steps for r in results], dtype=int),
        converged=np.array([r.converged for r in results], dtype=bool),
    )


class ScoringClient:
    """Worker-side stub: submit stacks, block for the keyed reply.

    ``generation`` on the scoring calls names the weight set to score
    on: 0 is the published base model, anything newer must first have
    been shipped through :meth:`install_overlay` (fire-and-forget;
    queue FIFO ordering makes install-before-score automatic).
    """

    def __init__(self, client_id: int, model_key: str,
                 request_queue, reply_queue) -> None:
        self.client_id = client_id
        self.model_key = model_key
        self.request_queue = request_queue
        self.reply_queue = reply_queue
        self._next_request = 0

    _ROUND_TRIP_SPAN = _telemetry.span("client.round_trip")

    def _round_trip(self, request):
        # The span covers submit -> keyed reply: the worker-side view
        # of service queue wait plus scoring time.
        with self._ROUND_TRIP_SPAN.time():
            self.request_queue.put(request)
            reply = self.reply_queue.get()
        if reply.request_id != request.request_id:  # pragma: no cover
            raise RuntimeError(
                f"reply {reply.request_id} for request "
                f"{request.request_id}: client protocol violated"
            )
        return reply

    def install_overlay(
        self, state: Dict[str, np.ndarray], generation: int
    ) -> None:
        """Ship this client's fine-tuned state as a service overlay."""
        buffer, manifest = pack_state(dict(state))
        self.request_queue.put(OverlayUpdate(
            client_id=self.client_id,
            model_key=self.model_key,
            generation=generation,
            buffer=buffer,
            manifest=tuple(manifest),
        ))

    def ascent(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
        gamma: float,
        max_steps: int,
        generation: int = 0,
    ) -> List[SurrogateResult]:
        self._next_request += 1
        reply = self._round_trip(AscentRequest(
            client_id=self.client_id,
            request_id=self._next_request,
            model_key=self.model_key,
            metrics=np.asarray(metrics, dtype=float),
            schedules=np.asarray(schedules, dtype=float),
            adjacencies=np.asarray(adjacencies, dtype=float),
            gamma=gamma,
            max_steps=max_steps,
            generation=generation,
        ))
        return [
            SurrogateResult(
                metrics=reply.metrics[i],
                confidence=float(reply.confidences[i]),
                n_steps=int(reply.n_steps[i]),
                converged=bool(reply.converged[i]),
            )
            for i in range(reply.metrics.shape[0])
        ]

    def confidences(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
        generation: int = 0,
    ) -> np.ndarray:
        self._next_request += 1
        reply = self._round_trip(ConfidenceRequest(
            client_id=self.client_id,
            request_id=self._next_request,
            model_key=self.model_key,
            metrics=np.asarray(metrics, dtype=float),
            schedules=np.asarray(schedules, dtype=float),
            adjacencies=np.asarray(adjacencies, dtype=float),
            generation=generation,
        ))
        return reply.confidences

    def close(self) -> None:
        """Sign off; the service evicts this client's overlays and
        exits once every client has."""
        self.request_queue.put(ClientDone(self.client_id))


class FleetScorer:
    """CAROL scorer routing ascents to the shared scoring service.

    Implements the :class:`repro.core.scoring.SurrogateScorer` surface:

    * **ascent** -- forwarded to the service: at generation 0 it scores
      on the published shared weights, and past the first fine-tune on
      this client's installed overlay, so diverged replicas stay in
      the consolidated batched stream;
    * **confidence** -- computed locally on the replica (a single
      forward; cheaper than a queue round-trip and bitwise-identical
      to in-process execution);
    * **fine_tune** -- copy-on-write divergence: the read-only shared
      parameters are materialised into private writable arrays, the
      fine-tune runs locally, and the new state ships to the service
      as a weight overlay (``overlays=True``, the default).

    With ``overlays=False`` (the pre-overlay behaviour) a diverged
    replica falls back to worker-local scoring instead; every such
    ascent increments ``diagnostics["local_fallbacks"]``, the counter
    campaigns assert to be zero once overlays are on.

    ``backend`` mirrors :class:`repro.core.scoring.LocalScorer`: it
    selects the ascent engine for the *worker-local fallback* path
    (the service's own backend is chosen service-side at construction).
    """

    def __init__(
        self,
        client: ScoringClient,
        model: GONDiscriminator,
        overlays: bool = True,
        backend: str = "exact",
    ) -> None:
        self.client = client
        self.model = model
        self.overlays = overlays
        self.backend = validate_backend(backend)
        self._local: Optional[object] = None
        self.generation = 0
        #: Per-instance registry backing :attr:`diagnostics` (always
        #: enabled -- these are deterministic record diagnostics, not
        #: wall-clock telemetry), surfaced into campaign records by
        #: ``experiments.campaign.run_cell``.
        self.telemetry = MetricsRegistry()
        self._fallbacks = self.telemetry.counter("scorer.local_fallbacks")
        self._installs = self.telemetry.counter("scorer.overlay_installs")

    @property
    def diagnostics(self) -> Dict[str, int]:
        """Legacy integer-counter view of :attr:`telemetry`."""
        return {
            "local_fallbacks": self._fallbacks.value,
            "overlay_installs": self._installs.value,
        }

    def ascent(
        self,
        metrics: np.ndarray,
        schedules: np.ndarray,
        adjacencies: np.ndarray,
        gamma: float,
        max_steps: int,
    ) -> List[SurrogateResult]:
        if self.generation == 0 or self.overlays:
            return self.client.ascent(
                metrics, schedules, adjacencies, gamma, max_steps,
                generation=self.generation,
            )
        # Pre-overlay degradation path: a diverged replica can only
        # score on its private weights.  Counted, never silent.
        self._fallbacks.inc()
        return self._local_scorer().ascent(
            metrics, schedules, adjacencies, gamma, max_steps
        )

    def _local_scorer(self):
        """Lazy in-process scorer for the fallback path.

        Shares :attr:`model` and tracks :attr:`generation`, so its
        fast kernel (if ``backend`` selects one) re-exports after every
        fine-tune.
        """
        from ..core.scoring import LocalScorer

        if self._local is None:
            self._local = LocalScorer(self.model, backend=self.backend)
        self._local.generation = self.generation
        return self._local

    def confidence(self, sample: GONInput) -> float:
        return self.model.score(sample)

    def fine_tune(
        self,
        samples: Sequence[GONInput],
        config: Optional[TrainingConfig],
        iterations: int,
        rng: np.random.Generator,
    ) -> float:
        if self.generation == 0:
            # Copy-on-write: shared views are read-only by design.
            for parameter in self.model.parameters():
                parameter.data = np.array(parameter.data)
        loss = fine_tune(
            self.model,
            list(samples),
            config=config,
            iterations=iterations,
            rng=rng,
        )
        self.generation += 1
        if self.overlays:
            # Ship the diverged state before any further scoring call:
            # FIFO queue order guarantees the service installs it ahead
            # of this client's next generation-N request.
            self.client.install_overlay(
                self.model.state_dict(), self.generation
            )
            self._installs.inc()
        return loss
