"""Ablated CAROL variants (§V-D, the hatched bars of Fig. 5).

* **AlwaysFineTune** -- CAROL without the confidence gate: the GON is
  fine-tuned every interval, inflating overheads and decision latency.
* **NeverFineTune** -- CAROL that never adapts, degrading QoS in the
  non-stationary AIoT workload.
* **WithGAN** -- the GON is replaced by a conventional GAN surrogate:
  a generator predicts metrics in one forward pass (faster decisions,
  no input-space optimisation) at ~6x the memory (Fig. 5e's 5% -> 30%).
  Like the GAN detectors of §II, the generator's flat output ties it to
  a fixed host count.
* **WithTraditionalSurrogate** -- a plain feed-forward regressor maps
  state summaries to QoS.  Decisions are fast but, lacking a confidence
  signal, it must fine-tune every interval.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

import numpy as np

from ..core.carol import CAROL, CAROLConfig
from ..core.features import GONInput, from_interval
from ..core.gon import GONDiscriminator
from ..core.interface import ResilienceModel
from ..core.nodeshift import neighbours, random_node_shift
from ..core.objectives import QoSObjective
from ..core.pot import PeakOverThreshold
from ..core.tabu import tabu_search
from ..nn import Adam, FeedForward, Tensor, mse_loss
from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology

__all__ = [
    "AlwaysFineTune",
    "NeverFineTune",
    "GANSurrogate",
    "WithGAN",
    "TraditionalSurrogate",
    "WithTraditionalSurrogate",
    "summary_features",
]


class AlwaysFineTune(CAROL):
    """CAROL fine-tuning at every scheduling interval (no POT gate)."""

    name = "CAROL-AlwaysFT"

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        sample = from_interval(metrics)
        # CAROL's Γ buffer is a bounded deque: eviction is automatic.
        self.buffer.append(sample)
        confidence = self.scorer.confidence(sample)
        threshold = self.pot.update(confidence)
        if len(self.buffer) >= 2:
            # Through the scorer so the generation bump flushes the
            # persistent score cache (the model just changed).
            self.scorer.fine_tune(
                list(self.buffer)[-self.config.min_buffer:],
                config=self._training_config,
                iterations=1,
                rng=self.rng,
            )
            self._invalidate_score_cache()
        self.diagnostics.confidences.append(confidence)
        self.diagnostics.thresholds.append(
            threshold if np.isfinite(threshold) else float("nan")
        )
        self.diagnostics.fine_tuned.append(True)


class NeverFineTune(CAROL):
    """CAROL that never adapts its GON after offline training."""

    name = "CAROL-NeverFT"

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        sample = from_interval(metrics)
        confidence = self.scorer.confidence(sample)
        threshold = self.pot.update(confidence)
        self.diagnostics.confidences.append(confidence)
        self.diagnostics.thresholds.append(
            threshold if np.isfinite(threshold) else float("nan")
        )
        self.diagnostics.fine_tuned.append(False)


# ----------------------------------------------------------------------
# GAN ablation
# ----------------------------------------------------------------------
def summary_features(sample: GONInput) -> np.ndarray:
    """Fixed-size global summary of an (M, S, G) tuple."""
    metrics = sample.metrics
    schedule = sample.schedule
    adjacency = sample.adjacency
    degrees = adjacency.sum(axis=1)
    return np.concatenate(
        [
            metrics.mean(axis=0),
            metrics.max(axis=0),
            schedule.mean(axis=0),
            [
                degrees.mean() / max(sample.n_hosts, 1),
                degrees.max() / max(sample.n_hosts, 1),
                float((degrees > degrees.mean()).sum()) / max(sample.n_hosts, 1),
            ],
        ]
    )


class GANSurrogate:
    """Conventional GAN: generator predicts M from (S, G) + noise.

    The generator emits a *flat* ``n_hosts x n_features`` block, so --
    unlike the GON -- the model is tied to the host count it was built
    for (a §II criticism of GAN detectors the ablation preserves).
    """

    def __init__(
        self,
        n_hosts: int,
        rng: np.random.Generator,
        hidden: int = 256,
        noise_dim: int = 16,
        n_m_features: int = 10,
        n_s_features: int = 3,
    ) -> None:
        self.n_hosts = n_hosts
        self.noise_dim = noise_dim
        self.n_m_features = n_m_features
        condition_dim = n_hosts * n_s_features + 3
        self.generator = FeedForward(
            condition_dim + noise_dim,
            n_hosts * n_m_features,
            rng,
            hidden=hidden,
            layers=4,
            activation="relu",
            final_activation="sigmoid",
        )
        self.discriminator = GONDiscriminator(rng, hidden=hidden // 2, n_layers=3)
        self.g_optimizer = Adam(self.generator.parameters(), lr=1e-3, weight_decay=1e-5)
        self.d_optimizer = Adam(
            self.discriminator.parameters(), lr=1e-3, weight_decay=1e-5
        )
        self.rng = rng

    # ------------------------------------------------------------------
    def _condition(self, schedule: np.ndarray, adjacency: np.ndarray) -> np.ndarray:
        degrees = adjacency.sum(axis=1)
        return np.concatenate(
            [
                schedule.reshape(-1),
                [
                    degrees.mean() / self.n_hosts,
                    degrees.max() / self.n_hosts,
                    degrees.std() / self.n_hosts,
                ],
            ]
        )

    def predict_metrics(
        self, schedule: np.ndarray, adjacency: np.ndarray
    ) -> np.ndarray:
        """One deterministic generator pass (zero noise)."""
        condition = self._condition(schedule, adjacency)
        inputs = np.concatenate([condition, np.zeros(self.noise_dim)])
        output = self.generator(Tensor(inputs)).data
        return output.reshape(self.n_hosts, self.n_m_features) * 3.0

    def confidence(self, sample: GONInput) -> float:
        return self.discriminator.score(sample)

    def train_step(self, sample: GONInput) -> float:
        """One adversarial step on a single (M, S, G) sample."""
        condition = self._condition(sample.schedule, sample.adjacency)
        noise = self.rng.normal(size=self.noise_dim)
        inputs = np.concatenate([condition, noise])

        # Discriminator update.
        fake = self.generator(Tensor(inputs)).data.reshape(
            self.n_hosts, self.n_m_features
        ) * 3.0
        self.d_optimizer.zero_grad()
        d_real = self.discriminator(
            sample.metrics, sample.schedule, sample.adjacency
        ).clip(1e-8, 1 - 1e-8)
        d_fake = self.discriminator(
            fake, sample.schedule, sample.adjacency
        ).clip(1e-8, 1 - 1e-8)
        d_loss = -(d_real.log() + (1.0 - d_fake).log())
        d_loss.backward()
        self.d_optimizer.step()

        # Generator update (non-saturating).
        self.g_optimizer.zero_grad()
        generated = self.generator(Tensor(inputs)).reshape(
            self.n_hosts, self.n_m_features
        ) * 3.0
        g_score = self.discriminator(
            generated, sample.schedule, sample.adjacency
        ).clip(1e-8, 1 - 1e-8)
        g_loss = -g_score.log()
        g_loss.backward()
        self.g_optimizer.step()
        return float(d_loss.data)

    def fit(self, samples: Sequence[GONInput], epochs: int = 3) -> None:
        """Offline pre-training over the trace."""
        for _ in range(epochs):
            order = self.rng.permutation(len(samples))
            for index in order:
                self.train_step(samples[index])

    def parameter_count(self) -> int:
        return (
            self.generator.parameter_count()
            + self.discriminator.parameter_count()
        )

    def memory_bytes(self) -> int:
        return 3 * 8 * self.parameter_count()


class WithGAN(ResilienceModel):
    """CAROL's loop with a GAN surrogate instead of the GON."""

    name = "CAROL-WithGAN"

    def __init__(
        self,
        surrogate: GANSurrogate,
        alpha: float = 0.5,
        beta: float = 0.5,
        config: Optional[CAROLConfig] = None,
    ) -> None:
        self.surrogate = surrogate
        self.config = config or CAROLConfig()
        self.objective = QoSObjective(alpha, beta)
        self.pot = PeakOverThreshold(
            risk=self.config.pot_risk,
            calibration_size=self.config.pot_calibration,
        )
        self.rng = np.random.default_rng(self.config.seed)
        self.buffer: Deque[GONInput] = deque(maxlen=self.config.buffer_capacity)

    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        if not report.failed_brokers or view.last_metrics is None:
            return proposal
        last = view.last_metrics
        schedule = np.asarray(last.schedule_encoding, dtype=float)

        def omega(candidate: Topology) -> float:
            # Single generator forward -- no input-space optimisation,
            # hence the lower decision time of the ablation (§V-D).
            predicted = self.surrogate.predict_metrics(
                schedule, candidate.adjacency()
            )
            return self.objective(predicted)

        def sampled_neighbours(topology: Topology) -> List[Topology]:
            options = neighbours(topology)
            limit = self.config.neighbourhood_sample
            if len(options) > limit:
                chosen = self.rng.choice(len(options), size=limit, replace=False)
                options = [options[i] for i in chosen]
            return options

        current = proposal
        for _failed in report.failed_brokers:
            start = random_node_shift(current, self.rng)
            result = tabu_search(
                start,
                objective=omega,
                neighbourhood=sampled_neighbours,
                tabu_size=self.config.tabu_size,
                max_iterations=self.config.tabu_iterations,
                patience=self.config.tabu_patience,
            )
            current = result.best
        return current

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        sample = from_interval(metrics)
        report = metrics.failure_report
        if not (report and report.failed_brokers):
            self.buffer.append(sample)
        confidence = self.surrogate.confidence(sample)
        threshold = self.pot.update(confidence)
        if confidence < threshold and len(self.buffer) >= self.config.min_buffer:
            for stored in self.buffer[-self.config.min_buffer:]:
                self.surrogate.train_step(stored)
            self.buffer.clear()

    def memory_bytes(self) -> int:
        buffer_bytes = sum(
            s.metrics.nbytes + s.schedule.nbytes + s.adjacency.nbytes
            for s in self.buffer
        )
        return self.surrogate.memory_bytes() + buffer_bytes


# ----------------------------------------------------------------------
# Traditional feed-forward surrogate ablation
# ----------------------------------------------------------------------
class TraditionalSurrogate:
    """Plain MLP regressor: state summary -> QoS objective."""

    def __init__(self, rng: np.random.Generator, hidden: int = 128) -> None:
        self.feature_dim = 2 * 10 + 3 + 3
        self.network = FeedForward(
            self.feature_dim, 1, rng,
            hidden=hidden, layers=3,
            activation="relu", final_activation="identity",
        )
        self.optimizer = Adam(self.network.parameters(), lr=1e-3, weight_decay=1e-5)

    def predict(self, sample: GONInput) -> float:
        features = summary_features(sample)
        return float(self.network(Tensor(features)).data.reshape(-1)[0])

    def fit_step(self, sample: GONInput, target: float) -> float:
        self.optimizer.zero_grad()
        features = summary_features(sample)
        prediction = self.network(Tensor(features)).reshape(())
        loss = mse_loss(prediction, np.array(target))
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    def fit(
        self,
        samples: Sequence[GONInput],
        objectives: Sequence[float],
        epochs: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        for _ in range(epochs):
            for index in rng.permutation(len(samples)):
                self.fit_step(samples[index], objectives[index])

    def memory_bytes(self) -> int:
        return 3 * 8 * self.network.parameter_count()


class WithTraditionalSurrogate(ResilienceModel):
    """Tabu repair over a feed-forward surrogate, fine-tuned always."""

    name = "CAROL-FFSurrogate"

    def __init__(
        self,
        surrogate: TraditionalSurrogate,
        alpha: float = 0.5,
        beta: float = 0.5,
        config: Optional[CAROLConfig] = None,
        fine_tune_steps: int = 24,
    ) -> None:
        self.surrogate = surrogate
        self.config = config or CAROLConfig()
        self.objective = QoSObjective(alpha, beta)
        self.rng = np.random.default_rng(self.config.seed)
        self.fine_tune_steps = fine_tune_steps
        self._buffer: Deque[tuple] = deque(maxlen=100)

    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        if not report.failed_brokers or view.last_metrics is None:
            return proposal
        last = view.last_metrics
        metrics = np.asarray(last.host_metrics, dtype=float)
        schedule = np.asarray(last.schedule_encoding, dtype=float)

        def omega(candidate: Topology) -> float:
            sample = GONInput(metrics, schedule, candidate.adjacency())
            return self.surrogate.predict(sample)

        def sampled_neighbours(topology: Topology) -> List[Topology]:
            options = neighbours(topology)
            limit = self.config.neighbourhood_sample
            if len(options) > limit:
                chosen = self.rng.choice(len(options), size=limit, replace=False)
                options = [options[i] for i in chosen]
            return options

        current = proposal
        for _failed in report.failed_brokers:
            start = random_node_shift(current, self.rng)
            result = tabu_search(
                start,
                objective=omega,
                neighbourhood=sampled_neighbours,
                tabu_size=self.config.tabu_size,
                max_iterations=self.config.tabu_iterations,
                patience=self.config.tabu_patience,
            )
            current = result.best
        return current

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        sample = from_interval(metrics)
        energy = float(metrics.host_metrics[:, 4].sum())
        slo = float(metrics.host_metrics[:, 5].sum())
        objective = self.objective.alpha * energy + self.objective.beta * slo
        self._buffer.append((sample, objective))
        # No confidence signal: fine-tune every interval (§V-D: "at the
        # cost of higher fine-tuning overheads").
        for _ in range(self.fine_tune_steps):
            index = int(self.rng.integers(len(self._buffer)))
            stored, target = self._buffer[index]
            self.surrogate.fit_step(stored, target)

    def memory_bytes(self) -> int:
        buffer_bytes = sum(
            s.metrics.nbytes + s.schedule.nbytes + s.adjacency.nbytes
            for s, _ in self._buffer
        )
        return self.surrogate.memory_bytes() + buffer_bytes
