"""Genetic algorithm substrate.

LBOS (Talaat et al., 2020) computes its reinforcement-learning reward
as a weighted average of QoS metrics whose weights are "determined
using genetic algorithms" (§II).  This is a small real-vector GA with
tournament selection, blend crossover and Gaussian mutation, run by
LBOS over recorded QoS history to re-derive the weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["GAConfig", "GeneticAlgorithm"]


@dataclass(frozen=True)
class GAConfig:
    """Evolution parameters."""

    population_size: int = 20
    generations: int = 10
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.2
    mutation_scale: float = 0.1
    #: Search box for every gene.
    lower: float = 0.0
    upper: float = 1.0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 2 <= self.tournament_size <= self.population_size:
            raise ValueError("tournament_size out of range")
        if self.lower >= self.upper:
            raise ValueError("need lower < upper")


class GeneticAlgorithm:
    """Maximise ``fitness(vector)`` over a box-constrained real vector."""

    def __init__(
        self,
        n_genes: int,
        fitness: Callable[[np.ndarray], float],
        rng: np.random.Generator,
        config: Optional[GAConfig] = None,
    ) -> None:
        if n_genes < 1:
            raise ValueError("n_genes must be >= 1")
        self.n_genes = n_genes
        self.fitness = fitness
        self.rng = rng
        self.config = config or GAConfig()

    # ------------------------------------------------------------------
    def run(self) -> tuple[np.ndarray, float]:
        """Evolve and return ``(best_vector, best_fitness)``."""
        cfg = self.config
        population = self.rng.uniform(
            cfg.lower, cfg.upper, size=(cfg.population_size, self.n_genes)
        )
        scores = np.array([self.fitness(ind) for ind in population])

        for _ in range(cfg.generations):
            children = []
            while len(children) < cfg.population_size:
                mother = self._tournament(population, scores)
                father = self._tournament(population, scores)
                child = self._crossover(mother, father)
                child = self._mutate(child)
                children.append(child)
            # Elitism: keep the incumbent best.
            best_index = int(np.argmax(scores))
            children[0] = population[best_index].copy()
            population = np.stack(children)
            scores = np.array([self.fitness(ind) for ind in population])

        best_index = int(np.argmax(scores))
        return population[best_index].copy(), float(scores[best_index])

    # ------------------------------------------------------------------
    def _tournament(self, population: np.ndarray, scores: np.ndarray) -> np.ndarray:
        indices = self.rng.choice(
            len(population), size=self.config.tournament_size, replace=False
        )
        winner = indices[int(np.argmax(scores[indices]))]
        return population[winner]

    def _crossover(self, mother: np.ndarray, father: np.ndarray) -> np.ndarray:
        if self.rng.random() > self.config.crossover_rate:
            return mother.copy()
        # Blend (BLX-alpha) crossover.
        mix = self.rng.uniform(-0.25, 1.25, size=self.n_genes)
        child = mix * mother + (1.0 - mix) * father
        return np.clip(child, self.config.lower, self.config.upper)

    def _mutate(self, individual: np.ndarray) -> np.ndarray:
        mask = self.rng.random(self.n_genes) < self.config.mutation_rate
        noise = self.rng.normal(
            0.0, self.config.mutation_scale, size=self.n_genes
        )
        mutated = individual + mask * noise
        return np.clip(mutated, self.config.lower, self.config.upper)
