"""Shared helpers for baseline resilience models.

Common topology-repair building blocks used across the §V baselines:
least-utilisation promotions (DYVERSE's broker-failure rule), merges
into the least-loaded broker (ECLB-style), and the utilisation-
balancing worker redistribution of the FRAS priority policy (also
borrowed by TopoMAD and StepGAN, which are detection-only methods the
paper supplements with FRAS's recovery policy).

Repair protocol reminder: at repair time ``view.topology`` is still the
*previous* graph ``G_{t-1}`` -- it is where a failed broker's LEI
membership can be read -- while ``proposal`` is the engine's default
initialisation with failed hosts stripped and orphans parked on the
closest surviving broker.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.interface import ResilienceModel
from ..simulator.engine import SystemView
from ..simulator.topology import Topology

__all__ = [
    "ResilienceModel",
    "cpu_utilisation",
    "combined_utilisation",
    "orphans_of",
    "promote_least_utilised",
    "merge_into_least_loaded",
    "rebalance_workers",
]


def cpu_utilisation(view: SystemView, host_id: int) -> float:
    """CPU utilisation of a host as last computed by the engine."""
    return float(view.hosts[host_id].utilisation["cpu"])


def combined_utilisation(view: SystemView, host_id: int) -> float:
    """CPU+RAM pressure, the load signal most baselines rank by."""
    host = view.hosts[host_id]
    return float(host.utilisation["cpu"] + host.utilisation["ram"])


def orphans_of(view: SystemView, failed_broker: int) -> List[int]:
    """Live former workers of a failed broker (from ``G_{t-1}``)."""
    previous = view.topology
    if failed_broker not in previous.brokers:
        return []
    return [
        worker
        for worker in previous.lei(failed_broker)
        if view.hosts[worker].alive
    ]


def promote_least_utilised(
    proposal: Topology,
    view: SystemView,
    orphans: Sequence[int],
    key=cpu_utilisation,
) -> Topology:
    """Type-3 repair: promote the least-utilised orphan to broker its
    siblings (DYVERSE's rule: "the worker with the least CPU
    utilization as the next broker of the same LEI").
    """
    movable = [w for w in orphans if w in proposal.assignment]
    if not movable:
        return proposal
    chosen = min(movable, key=lambda w: key(view, w))
    result = proposal.promote(chosen)
    for worker in movable:
        if worker != chosen:
            result = result.reassign(worker, chosen)
    return result


def merge_into_least_loaded(
    proposal: Topology,
    view: SystemView,
    orphans: Sequence[int],
    key=combined_utilisation,
) -> Topology:
    """Type-2 repair: hand all orphans to the least-loaded live broker."""
    live_brokers = [
        b for b in sorted(proposal.brokers) if view.hosts[b].alive
    ]
    if not live_brokers:
        return proposal
    target = min(live_brokers, key=lambda b: key(view, b))
    result = proposal
    for worker in orphans:
        if worker in result.assignment:
            if result.assignment[worker] != target:
                result = result.reassign(worker, target)
        elif worker not in result.attached:
            result = result.attach_worker(worker, target)
    return result


def rebalance_workers(
    topology: Topology,
    view: SystemView,
    max_moves: int = 2,
    min_imbalance: float = 0.25,
) -> Topology:
    """Move workers from the hottest LEI to the coolest.

    The FRAS-style priority load-balancing step: compare mean worker
    load per LEI and move up to ``max_moves`` busy workers across when
    the spread exceeds ``min_imbalance``.
    """
    result = topology
    for _ in range(max_moves):
        brokers = sorted(result.brokers)
        if len(brokers) < 2:
            return result
        loads = {}
        for broker in brokers:
            lei = result.lei(broker)
            loads[broker] = (
                float(np.mean([combined_utilisation(view, w) for w in lei]))
                if lei
                else 0.0
            )
        hottest = max(brokers, key=lambda b: loads[b])
        coolest = min(brokers, key=lambda b: loads[b])
        if loads[hottest] - loads[coolest] < min_imbalance:
            break
        movable = [w for w in result.lei(hottest) if view.hosts[w].alive]
        if len(movable) < 2:
            break
        mover = max(movable, key=lambda w: combined_utilisation(view, w))
        result = result.reassign(mover, coolest)
    return result
