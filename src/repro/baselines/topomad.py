"""TopoMAD baseline (He et al., TNNLS 2020) -- LSTM + VAE reconstruction.

A topology-aware unsupervised anomaly detector: an LSTM encoder maps
the window of system metrics to a latent Gaussian, a variational
autoencoder samples it, and an LSTM decoder reconstructs the window;
high reconstruction error on the *latest* state flags a fault.  As the
paper notes, "the reconstruction error is only obtained for the latest
state, limiting them to using reactive fault recovery policies" (§II)
-- so, like the paper's experiments, the recovery policy here is the
FRAS priority load balancing.

The detector retrains on its sliding window every interval (overhead),
and its threshold is an empirical quantile of past scores (the KDE
thresholding family cited in §II).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import LSTM, Adam, Linear, Tensor, kl_gaussian, mse_loss
from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology
from .base import (
    ResilienceModel,
    combined_utilisation,
    orphans_of,
    promote_least_utilised,
    rebalance_workers,
)

__all__ = ["TopoMAD", "LSTMVAE"]

_WINDOW = 12
_N_FEATURES = 6
_LATENT = 8


class LSTMVAE:
    """LSTM encoder -> Gaussian latent -> LSTM decoder."""

    def __init__(self, hidden: int = 48, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.rng = rng
        self.encoder = LSTM(_N_FEATURES, hidden, rng)
        self.mu_head = Linear(hidden, _LATENT, rng, activation_hint="linear")
        self.logvar_head = Linear(hidden, _LATENT, rng, activation_hint="linear")
        self.latent_to_hidden = Linear(_LATENT, hidden, rng)
        self.decoder = LSTM(_N_FEATURES, hidden, rng)
        self.out_head = Linear(hidden, _N_FEATURES, rng, activation_hint="linear")
        parameters = (
            self.encoder.parameters()
            + self.mu_head.parameters()
            + self.logvar_head.parameters()
            + self.latent_to_hidden.parameters()
            + self.decoder.parameters()
            + self.out_head.parameters()
        )
        self.optimizer = Adam(parameters, lr=1e-3, weight_decay=1e-5)

    # ------------------------------------------------------------------
    def _encode(self, window: np.ndarray):
        _, (h, _c) = self.encoder(Tensor(window))
        return self.mu_head(h), self.logvar_head(h)

    def _decode(self, z, seq_len: int):
        h0 = self.latent_to_hidden(z).tanh()
        c0 = Tensor(np.zeros(h0.shape))
        zeros = Tensor(np.zeros((seq_len, _N_FEATURES)))
        hidden, _ = self.decoder(zeros, (h0, c0))
        from ..nn import stack

        return stack([self.out_head(hidden[t]) for t in range(seq_len)], axis=0)

    def reconstruct(self, window: np.ndarray) -> np.ndarray:
        """Mean reconstruction (latent = mu, no sampling)."""
        mu, _logvar = self._encode(window)
        return self._decode(mu, window.shape[0]).data

    def reconstruction_error(self, window: np.ndarray) -> float:
        """Squared error on the latest state (the TopoMAD score)."""
        reconstruction = self.reconstruct(window)
        return float(np.mean((reconstruction[-1] - window[-1]) ** 2))

    def fit_step(self, window: np.ndarray, beta: float = 0.1) -> float:
        """One ELBO gradient step (reconstruction + beta * KL)."""
        self.optimizer.zero_grad()
        mu, logvar = self._encode(window)
        noise = Tensor(self.rng.normal(size=mu.shape))
        z = mu + (logvar * 0.5).exp() * noise
        reconstruction = self._decode(z, window.shape[0])
        loss = mse_loss(reconstruction, window) + kl_gaussian(mu, logvar) * beta
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    def parameter_count(self) -> int:
        modules = (
            self.encoder,
            self.mu_head,
            self.logvar_head,
            self.latent_to_hidden,
            self.decoder,
            self.out_head,
        )
        return sum(m.parameter_count() for m in modules)

    def memory_bytes(self) -> int:
        return 3 * 8 * self.parameter_count()


class TopoMAD(ResilienceModel):
    """Reconstruction-based anomaly detection + reactive FRAS recovery."""

    name = "TopoMAD"

    def __init__(self, seed: int = 0, fit_steps_per_interval: int = 12) -> None:
        self.vae = LSTMVAE(seed=seed)
        self.fit_steps_per_interval = fit_steps_per_interval
        self.rng = np.random.default_rng(seed)
        self._window: List[np.ndarray] = []
        self._scores: List[float] = []

    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        result = proposal
        for failed in report.failed_brokers:
            orphans = orphans_of(view, failed)
            result = promote_least_utilised(
                result, view, orphans, key=combined_utilisation
            )

        # Reactive response to a detected anomaly: shed load off the
        # hottest LEI even without a confirmed broker death.
        if self._anomalous():
            result = rebalance_workers(result, view, max_moves=2)
        return result

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        features = _global_features(metrics)
        self._window.append(features)
        if len(self._window) > 6 * _WINDOW:
            self._window.pop(0)
        if len(self._window) >= 3:
            window = np.stack(self._window[-_WINDOW:])
            self._scores.append(self.vae.reconstruction_error(window))
            if len(self._scores) > 200:
                self._scores.pop(0)
            # Per-interval retraining on random sub-windows.
            for _ in range(self.fit_steps_per_interval):
                end = int(self.rng.integers(2, len(self._window)))
                start = max(0, end - _WINDOW)
                self.vae.fit_step(np.stack(self._window[start:end + 1]))

    def memory_bytes(self) -> int:
        window_bytes = sum(w.nbytes for w in self._window)
        return 6 * 1024 ** 2 + self.vae.memory_bytes() + window_bytes

    # ------------------------------------------------------------------
    def _anomalous(self) -> bool:
        """Latest score above the empirical 90th percentile."""
        if len(self._scores) < 10:
            return False
        threshold = float(np.quantile(self._scores[:-1], 0.9))
        return self._scores[-1] > threshold


def _global_features(metrics: IntervalMetrics) -> np.ndarray:
    host = metrics.host_metrics
    return np.array(
        [
            float(host[:, 0].mean()),
            float(host[:, 1].mean()),
            float(host[:, 4].sum()),
            float(host[:, 5].sum()),
            len(metrics.topology.brokers) / max(metrics.topology.n_hosts, 1),
            metrics.n_active_tasks / 20.0,
        ]
    )
