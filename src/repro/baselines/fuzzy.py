"""Mamdani-style fuzzy inference substrate.

ELBS computes task priorities from three fuzzy inputs (SLO deadline,
user-defined priority, estimated processing time) and FRAS drives its
autoscaling through a fuzzy layer in front of a recurrent surrogate
(§II).  This module provides the pieces both need: triangular
membership functions, fuzzy variables, min-AND rules and centroid
defuzzification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["TriangularMF", "FuzzyVariable", "FuzzyRule", "FuzzySystem"]


@dataclass(frozen=True)
class TriangularMF:
    """Triangular membership function with feet ``a, c`` and peak ``b``."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c:
            raise ValueError(f"need a <= b <= c, got ({self.a}, {self.b}, {self.c})")

    def __call__(self, x: float) -> float:
        if x <= self.a or x >= self.c:
            # Shoulder terms: stay saturated beyond the flat peak.
            if self.a == self.b and x <= self.a:
                return 1.0
            if self.b == self.c and x >= self.c:
                return 1.0
            return 0.0
        if x == self.b:
            return 1.0
        if x < self.b:
            return (x - self.a) / (self.b - self.a)
        return (self.c - x) / (self.c - self.b)

    def centroid(self) -> float:
        return (self.a + self.b + self.c) / 3.0


class FuzzyVariable:
    """A named variable with labelled membership terms."""

    def __init__(self, name: str, terms: Mapping[str, TriangularMF]) -> None:
        if not terms:
            raise ValueError("fuzzy variable needs at least one term")
        self.name = name
        self.terms = dict(terms)

    def fuzzify(self, x: float) -> Dict[str, float]:
        """Membership degree of ``x`` in every term."""
        return {label: mf(x) for label, mf in self.terms.items()}

    @classmethod
    def uniform(cls, name: str, labels: Sequence[str], low: float, high: float) -> "FuzzyVariable":
        """Evenly-spaced triangular terms across ``[low, high]``."""
        if len(labels) < 2:
            raise ValueError("need at least two labels")
        centres = np.linspace(low, high, len(labels))
        half = (high - low) / (len(labels) - 1)
        terms = {}
        for label, centre in zip(labels, centres):
            terms[label] = TriangularMF(
                max(low, centre - half), centre, min(high, centre + half)
            )
        return cls(name, terms)


@dataclass(frozen=True)
class FuzzyRule:
    """IF (var1 is term1) AND ... THEN (output is term)."""

    antecedents: Tuple[Tuple[str, str], ...]
    consequent: str

    def strength(self, memberships: Mapping[str, Dict[str, float]]) -> float:
        """Min-AND firing strength given fuzzified inputs."""
        degrees = []
        for variable, term in self.antecedents:
            degrees.append(memberships[variable][term])
        return min(degrees) if degrees else 0.0


class FuzzySystem:
    """Rule base over input variables with a fuzzy output variable.

    Inference: fuzzify crisp inputs, fire every rule with min-AND,
    aggregate per output term with max, defuzzify by the weighted
    centroid of output-term centroids (a standard fast Mamdani
    approximation).
    """

    def __init__(
        self,
        inputs: Sequence[FuzzyVariable],
        output: FuzzyVariable,
        rules: Sequence[FuzzyRule],
    ) -> None:
        if not rules:
            raise ValueError("fuzzy system needs at least one rule")
        self.inputs = {var.name: var for var in inputs}
        self.output = output
        self.rules = list(rules)
        for rule in self.rules:
            for variable, term in rule.antecedents:
                if variable not in self.inputs:
                    raise KeyError(f"unknown input variable {variable!r}")
                if term not in self.inputs[variable].terms:
                    raise KeyError(f"unknown term {term!r} of {variable!r}")
            if rule.consequent not in output.terms:
                raise KeyError(f"unknown output term {rule.consequent!r}")

    def infer(self, crisp_inputs: Mapping[str, float]) -> float:
        """Crisp output for crisp inputs."""
        memberships = {
            name: variable.fuzzify(float(crisp_inputs[name]))
            for name, variable in self.inputs.items()
        }
        activation: Dict[str, float] = {term: 0.0 for term in self.output.terms}
        for rule in self.rules:
            strength = rule.strength(memberships)
            activation[rule.consequent] = max(activation[rule.consequent], strength)

        total = sum(activation.values())
        if total <= 0.0:
            # No rule fired: fall back to the output mid-point.
            centroids = [mf.centroid() for mf in self.output.terms.values()]
            return float(np.mean(centroids))
        weighted = sum(
            strength * self.output.terms[term].centroid()
            for term, strength in activation.items()
        )
        return weighted / total
