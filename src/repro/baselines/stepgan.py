"""StepGAN baseline (Feng et al., IoT-J 2021) -- stepwise conv GAN.

StepGAN "converts the input time-series into matrices and executes
convolution operations to capture temporal trends", trained with a
stepwise process (§II): the discriminator learns on progressively
longer window prefixes, which stabilises GAN training on streams.  The
discriminator's score on the latest window is the anomaly signal; low
likelihood means the window looks unlike normal operation.

Like TopoMAD it is detection-only, so the paper pairs it with FRAS's
priority load-balancing recovery -- reproduced here.  Carrying both a
generator and a conv discriminator makes it one of the heavier models
(Fig. 5e) and its per-interval adversarial updates are costly
(Fig. 5f).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import Adam, Conv1d, Linear, Tensor
from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology
from .base import (
    ResilienceModel,
    combined_utilisation,
    orphans_of,
    promote_least_utilised,
    rebalance_workers,
)

__all__ = ["StepGAN", "ConvDiscriminator", "ConvGenerator"]

_WINDOW = 12
_N_FEATURES = 6
_NOISE = 8
_EPS = 1e-8


class ConvDiscriminator:
    """Conv1d stack over [features, window] matrices -> likelihood."""

    def __init__(self, channels: int = 24, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.conv1 = Conv1d(_N_FEATURES, channels, 3, rng, padding=1)
        self.conv2 = Conv1d(channels, channels, 3, rng, padding=1)
        self.head = Linear(channels, 1, rng, activation_hint="linear")

    def forward(self, window_matrix) -> Tensor:
        """``window_matrix``: [features, window_len] (any length >= 2)."""
        x = Tensor(window_matrix) if isinstance(window_matrix, np.ndarray) else window_matrix
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()
        pooled = x.mean(axis=1)
        return self.head(pooled).sigmoid()

    def parameters(self):
        return (
            self.conv1.parameters()
            + self.conv2.parameters()
            + self.head.parameters()
        )

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())


class ConvGenerator:
    """Noise -> [features, window] matrix through a deconv-ish MLP."""

    def __init__(self, hidden: int = 96, seed: int = 1) -> None:
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(_NOISE, hidden, rng)
        self.fc2 = Linear(hidden, hidden, rng)
        self.fc3 = Linear(hidden, _N_FEATURES * _WINDOW, rng, activation_hint="linear")

    def forward(self, noise: np.ndarray) -> Tensor:
        x = self.fc1(Tensor(noise)).relu()
        x = self.fc2(x).relu()
        return self.fc3(x).sigmoid().reshape(_N_FEATURES, _WINDOW)

    def parameters(self):
        return self.fc1.parameters() + self.fc2.parameters() + self.fc3.parameters()

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())


class StepGAN(ResilienceModel):
    """Stepwise-trained conv GAN detector + reactive FRAS recovery."""

    name = "StepGAN"

    def __init__(self, seed: int = 0, adversarial_steps: int = 6) -> None:
        self.discriminator = ConvDiscriminator(seed=seed)
        self.generator = ConvGenerator(seed=seed + 1)
        self.d_optimizer = Adam(self.discriminator.parameters(), lr=1e-3, weight_decay=1e-5)
        self.g_optimizer = Adam(self.generator.parameters(), lr=1e-3, weight_decay=1e-5)
        self.adversarial_steps = adversarial_steps
        self.rng = np.random.default_rng(seed)
        self._window: List[np.ndarray] = []
        self._scores: List[float] = []
        #: Stepwise curriculum: current training prefix length.
        self._prefix = 4

    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        result = proposal
        for failed in report.failed_brokers:
            orphans = orphans_of(view, failed)
            result = promote_least_utilised(
                result, view, orphans, key=combined_utilisation
            )
        if self._anomalous():
            result = rebalance_workers(result, view, max_moves=2)
        return result

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        features = _global_features(metrics)
        self._window.append(features)
        if len(self._window) > 6 * _WINDOW:
            self._window.pop(0)
        if len(self._window) < 4:
            return

        matrix = np.stack(self._window[-_WINDOW:]).T  # [features, window]
        score = float(self.discriminator.forward(matrix).data.reshape(-1)[0])
        self._scores.append(score)
        if len(self._scores) > 200:
            self._scores.pop(0)

        # Stepwise adversarial updates on growing prefixes.
        self._prefix = min(self._prefix + 1, min(_WINDOW, len(self._window)))
        for _ in range(self.adversarial_steps):
            self._adversarial_step(prefix=self._prefix)

    def memory_bytes(self) -> int:
        params = (
            self.discriminator.parameter_count()
            + self.generator.parameter_count()
        )
        window_bytes = sum(w.nbytes for w in self._window)
        return 8 * 1024 ** 2 + 3 * 8 * params + window_bytes

    # ------------------------------------------------------------------
    def _adversarial_step(self, prefix: int) -> None:
        end = int(self.rng.integers(prefix, len(self._window) + 1))
        real = np.stack(self._window[end - prefix:end]).T

        # Discriminator step.
        noise = self.rng.normal(size=_NOISE)
        fake_full = self.generator.forward(noise).detach()
        fake = Tensor(fake_full.data[:, :prefix])
        self.d_optimizer.zero_grad()
        d_real = self.discriminator.forward(real).clip(_EPS, 1 - _EPS)
        d_fake = self.discriminator.forward(fake).clip(_EPS, 1 - _EPS)
        d_loss = -(d_real.log() + (1.0 - d_fake).log()).mean()
        d_loss.backward()
        self.d_optimizer.step()

        # Generator step (non-saturating loss).
        self.g_optimizer.zero_grad()
        generated = self.generator.forward(self.rng.normal(size=_NOISE))
        g_score = self.discriminator.forward(
            generated[:, :prefix]
        ).clip(_EPS, 1 - _EPS)
        g_loss = -g_score.log().mean()
        g_loss.backward()
        self.g_optimizer.step()

    def _anomalous(self) -> bool:
        """Low discriminator likelihood vs the empirical 10th percentile."""
        if len(self._scores) < 10:
            return False
        threshold = float(np.quantile(self._scores[:-1], 0.1))
        return self._scores[-1] < threshold


def _global_features(metrics: IntervalMetrics) -> np.ndarray:
    host = metrics.host_metrics
    return np.array(
        [
            float(host[:, 0].mean()),
            float(host[:, 1].mean()),
            float(host[:, 4].sum()),
            float(host[:, 5].sum()),
            len(metrics.topology.brokers) / max(metrics.topology.n_hosts, 1),
            metrics.n_active_tasks / 20.0,
        ]
    )
