"""``repro.baselines`` -- the §V comparison set.

Seven baselines re-implemented from their papers' descriptions --
DYVERSE and ECLB (heuristic/meta-heuristic), LBOS (RL), ELBS and FRAS
(surrogate models), TopoMAD and StepGAN (reconstruction detectors, run
with FRAS's recovery policy as in the paper) -- plus the four §V-D
ablations of CAROL and the fuzzy-inference / genetic-algorithm
substrates they rely on.
"""

from .ablations import (
    AlwaysFineTune,
    GANSurrogate,
    NeverFineTune,
    TraditionalSurrogate,
    WithGAN,
    WithTraditionalSurrogate,
    summary_features,
)
from .base import (
    ResilienceModel,
    combined_utilisation,
    cpu_utilisation,
    merge_into_least_loaded,
    orphans_of,
    promote_least_utilised,
    rebalance_workers,
)
from .dyverse import DYVERSE
from .eclb import ECLB, GaussianNaiveBayes
from .elbs import ELBS, PNNSurrogate, build_priority_system
from .fras import FRAS, RecurrentSurrogate
from .fuzzy import FuzzyRule, FuzzySystem, FuzzyVariable, TriangularMF
from .ga import GAConfig, GeneticAlgorithm
from .lbos import LBOS
from .stepgan import ConvDiscriminator, ConvGenerator, StepGAN
from .topomad import LSTMVAE, TopoMAD

__all__ = [
    "ResilienceModel",
    "DYVERSE",
    "ECLB",
    "GaussianNaiveBayes",
    "LBOS",
    "ELBS",
    "PNNSurrogate",
    "build_priority_system",
    "FRAS",
    "RecurrentSurrogate",
    "TopoMAD",
    "LSTMVAE",
    "StepGAN",
    "ConvDiscriminator",
    "ConvGenerator",
    "AlwaysFineTune",
    "NeverFineTune",
    "WithGAN",
    "GANSurrogate",
    "WithTraditionalSurrogate",
    "TraditionalSurrogate",
    "summary_features",
    "FuzzySystem",
    "FuzzyVariable",
    "FuzzyRule",
    "TriangularMF",
    "GeneticAlgorithm",
    "GAConfig",
    "cpu_utilisation",
    "combined_utilisation",
    "orphans_of",
    "promote_least_utilised",
    "merge_into_least_loaded",
    "rebalance_workers",
]
