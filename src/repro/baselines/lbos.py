"""LBOS baseline (Talaat et al., 2020) -- reinforcement learning.

Load Balancing and Optimization Strategy: a Q-learning agent allocates
resources, its reward being a weighted average of QoS metrics whose
weights are derived with a **genetic algorithm**; arriving requests are
spread with a dynamic weighted round-robin over edge servers (§II).

Mapping onto broker resilience:

* state -- coarse bucket of (broker count, hottest-LEI load, system
  load);
* actions -- the node-shift families {merge, split, promote, keep};
* reward -- ``-(w1 * energy + w2 * slo + w3 * response)`` with weights
  re-derived by the GA over the recorded QoS history every
  ``ga_period`` intervals (the expensive step that, together with the
  weighted round-robin pass, gives LBOS the high decision time the
  paper reports in Fig. 5d);
* the Q-table updates every interval (LBOS "observes the network
  traffic constantly"), which is its fine-tuning overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology
from .base import (
    ResilienceModel,
    combined_utilisation,
    merge_into_least_loaded,
    orphans_of,
    promote_least_utilised,
)
from .ga import GAConfig, GeneticAlgorithm

__all__ = ["LBOS"]

_ACTIONS = ("merge", "split", "promote", "keep")


class LBOS(ResilienceModel):
    """Q-learning topology repair with GA-derived reward weights."""

    name = "LBOS"

    def __init__(
        self,
        seed: int = 0,
        learning_rate: float = 0.3,
        discount: float = 0.9,
        epsilon: float = 0.1,
        ga_period: int = 10,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.learning_rate = learning_rate
        self.discount = discount
        self.epsilon = epsilon
        self.ga_period = ga_period
        self.q_table: Dict[Tuple, np.ndarray] = {}
        #: GA-derived reward weights (energy, slo, response).
        self.weights = np.array([1 / 3, 1 / 3, 1 / 3])
        #: QoS history rows: (energy, slo, response_norm).
        self._history: List[np.ndarray] = []
        self._last_state: Optional[Tuple] = None
        self._last_action: Optional[int] = None
        self._intervals_seen = 0

    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        state = self._encode_state(view, proposal)
        action_index = self._select_action(state)
        self._last_state, self._last_action = state, action_index
        action = _ACTIONS[action_index]

        result = proposal
        orphan_pool: List[int] = []
        for failed in report.failed_brokers:
            orphan_pool.extend(orphans_of(view, failed))

        if action == "merge":
            result = merge_into_least_loaded(result, view, orphan_pool)
            if len(result.brokers) > 1 and not report.failed_brokers:
                hottest = max(
                    result.brokers, key=lambda b: combined_utilisation(view, b)
                )
                others = [b for b in result.brokers if b != hottest]
                target = min(others, key=lambda b: combined_utilisation(view, b))
                result = result.demote(hottest, target)
        elif action == "split":
            result = self._split_hottest(result, view)
        elif action == "promote":
            result = promote_least_utilised(result, view, orphan_pool)
        # "keep" returns the proposal unchanged.

        result = self._weighted_round_robin(result, view)
        return result

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        """Record QoS, update Q-values, periodically re-run the GA."""
        energy = float(metrics.host_metrics[:, 4].sum())
        slo = float(metrics.host_metrics[:, 5].sum())
        response = metrics.mean_response_time / view.interval_seconds
        self._history.append(np.array([energy, slo, response]))
        if len(self._history) > 200:
            self._history.pop(0)

        reward = -float(self.weights @ self._history[-1])
        if self._last_state is not None and self._last_action is not None:
            next_state = self._encode_state(view, metrics.topology)
            q_now = self._q_values(self._last_state)
            q_next = self._q_values(next_state)
            td_target = reward + self.discount * float(q_next.max())
            q_now[self._last_action] += self.learning_rate * (
                td_target - q_now[self._last_action]
            )

        self._intervals_seen += 1
        if self._intervals_seen % self.ga_period == 0 and len(self._history) >= 10:
            self._evolve_weights()

    def memory_bytes(self) -> int:
        """Q-table plus history -- the smallest AI footprint (Fig. 5e)."""
        table = sum(q.nbytes for q in self.q_table.values())
        history = sum(h.nbytes for h in self._history)
        return 128 * 1024 + table + history

    # ------------------------------------------------------------------
    def _encode_state(self, view: SystemView, topology: Topology) -> Tuple:
        utilisation = view.utilisation_matrix()
        hottest = 0.0
        for broker in topology.brokers:
            lei = topology.lei(broker)
            if lei:
                hottest = max(
                    hottest, float(np.mean([utilisation[w, 0] for w in lei]))
                )
        system = float(utilisation[:, 0].mean())
        return (
            min(len(topology.brokers), 6),
            int(min(hottest, 1.5) * 4),
            int(min(system, 1.5) * 4),
        )

    def _q_values(self, state: Tuple) -> np.ndarray:
        if state not in self.q_table:
            self.q_table[state] = np.zeros(len(_ACTIONS))
        return self.q_table[state]

    def _select_action(self, state: Tuple) -> int:
        if self.rng.random() < self.epsilon:
            return int(self.rng.integers(len(_ACTIONS)))
        return int(np.argmax(self._q_values(state)))

    def _split_hottest(self, topology: Topology, view: SystemView) -> Topology:
        """Promote a worker out of the hottest LEI (Type-1 flavour)."""
        candidates = [
            b for b in sorted(topology.brokers) if len(topology.lei(b)) >= 2
        ]
        if not candidates:
            return topology
        utilisation = view.utilisation_matrix()

        def lei_load(broker: int) -> float:
            lei = topology.lei(broker)
            return float(np.mean([utilisation[w, 0] for w in lei]))

        hottest = max(candidates, key=lei_load)
        lei = topology.lei(hottest)
        chosen = min(lei, key=lambda w: utilisation[w, 0])
        result = topology.promote(chosen)
        movers = [w for w in lei if w != chosen][::2]
        for mover in movers:
            result = result.reassign(mover, chosen)
        return result

    def _weighted_round_robin(
        self, topology: Topology, view: SystemView
    ) -> Topology:
        """Dynamic weighted round-robin pass over workers.

        Recomputes per-broker service weights from inverse load and
        re-spreads the most recently orphan-heavy assignments; this is
        the deliberate, iteration-heavy allocation step of the original
        LBOS design.
        """
        brokers = sorted(topology.brokers)
        if len(brokers) < 2:
            return topology
        utilisation = view.utilisation_matrix()
        weights = np.array(
            [1.0 / (0.1 + utilisation[b, 0]) for b in brokers]
        )
        weights = weights / weights.sum()
        sizes = topology.lei_sizes()
        n_workers = sum(sizes.values())
        targets = {
            broker: weight * n_workers for broker, weight in zip(brokers, weights)
        }
        result = topology
        # Move workers one at a time from over- to under-target LEIs.
        for _ in range(n_workers):
            sizes = result.lei_sizes()
            over = [b for b in brokers if sizes[b] > targets[b] + 1.0]
            under = [b for b in brokers if sizes[b] < targets[b] - 1.0]
            if not over or not under:
                break
            source, destination = over[0], under[0]
            lei = result.lei(source)
            if not lei:
                break
            mover = max(lei, key=lambda w: utilisation[w, 0])
            result = result.reassign(mover, destination)
        return result

    def _evolve_weights(self) -> None:
        """GA over recorded history: weights that best rank good states."""
        history = np.stack(self._history)
        target = history.sum(axis=1)  # unweighted severity as reference

        def fitness(weights: np.ndarray) -> float:
            normalised = weights / (weights.sum() + 1e-9)
            scores = history @ normalised
            # Prefer weightings whose ranking agrees with overall QoS
            # severity while staying balanced across metrics.
            correlation = np.corrcoef(scores, target)[0, 1]
            if np.isnan(correlation):
                correlation = 0.0
            balance = -float(np.var(normalised))
            return correlation + 0.1 * balance

        algorithm = GeneticAlgorithm(
            n_genes=3,
            fitness=fitness,
            rng=self.rng,
            config=GAConfig(population_size=16, generations=8),
        )
        best, _score = algorithm.run()
        self.weights = best / (best.sum() + 1e-9)
