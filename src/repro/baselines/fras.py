"""FRAS baseline (Etemadi et al., Cluster Computing 2021) -- fuzzy RNN.

Fuzzy-based Real-time Auto-Scaling: IoT applications run in virtual
machines whose autoscaling decisions come from inferring system QoS
with a **fuzzy recurrent neural network** surrogate (§II).  Mapped to
broker resilience: an LSTM over the window of recent global metrics
predicts next-interval QoS; a fuzzy layer turns the prediction and its
trend into a scale-up / hold / scale-down decision over the broker
layer, and failed brokers recover by restarting on the least-utilised
worker (the VM-recovery analogue).

The recurrent surrogate is re-fitted on its window *every* interval --
the periodic fine-tuning that makes FRAS the cheapest-but-still-costly
baseline in Fig. 5f.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import LSTM, Adam, Linear, Tensor, mse_loss
from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology
from .base import (
    ResilienceModel,
    combined_utilisation,
    orphans_of,
    promote_least_utilised,
    rebalance_workers,
)
from .fuzzy import FuzzyRule, FuzzySystem, FuzzyVariable

__all__ = ["FRAS", "RecurrentSurrogate"]

_WINDOW = 16
_N_FEATURES = 6


class RecurrentSurrogate:
    """LSTM regression head over the global metric window."""

    def __init__(self, hidden: int = 64, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.lstm = LSTM(_N_FEATURES, hidden, rng)
        self.head = Linear(hidden, 1, rng, activation_hint="linear")
        self.optimizer = Adam(
            self.lstm.parameters() + self.head.parameters(),
            lr=1e-3,
            weight_decay=1e-5,
        )

    def predict(self, window: np.ndarray) -> float:
        _, (h, _c) = self.lstm(Tensor(window))
        return float(self.head(h).data.reshape(-1)[0])

    def fit_step(self, window: np.ndarray, target: float) -> float:
        """One gradient step on (window -> next objective)."""
        self.optimizer.zero_grad()
        _, (h, _c) = self.lstm(Tensor(window))
        prediction = self.head(h).reshape(())
        loss = mse_loss(prediction, np.array(target))
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    def memory_bytes(self) -> int:
        params = self.lstm.parameter_count() + self.head.parameter_count()
        return 3 * 8 * params


def _build_scaling_system() -> FuzzySystem:
    """Fuzzy layer: (predicted QoS, trend) -> scaling decision."""
    qos = FuzzyVariable.uniform("qos", ("good", "fair", "poor"), 0.0, 1.0)
    trend = FuzzyVariable.uniform("trend", ("falling", "flat", "rising"), -0.2, 0.2)
    action = FuzzyVariable.uniform("action", ("scale_down", "hold", "scale_up"), 0.0, 1.0)
    rules = [
        FuzzyRule((("qos", "poor"),), "scale_up"),
        FuzzyRule((("qos", "fair"), ("trend", "rising")), "scale_up"),
        FuzzyRule((("qos", "good"), ("trend", "falling")), "scale_down"),
        FuzzyRule((("qos", "good"), ("trend", "flat")), "hold"),
        FuzzyRule((("qos", "fair"), ("trend", "flat")), "hold"),
        FuzzyRule((("qos", "fair"), ("trend", "falling")), "hold"),
    ]
    return FuzzySystem([qos, trend], action, rules)


class FRAS(ResilienceModel):
    """Fuzzy-recurrent QoS surrogate driving broker-layer autoscaling."""

    name = "FRAS"

    def __init__(self, seed: int = 0, fit_steps_per_interval: int = 24) -> None:
        self.surrogate = RecurrentSurrogate(seed=seed)
        self.scaler = _build_scaling_system()
        self.fit_steps_per_interval = fit_steps_per_interval
        self._window: List[np.ndarray] = []
        self._objectives: List[float] = []
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        result = proposal
        # VM-style recovery: restart broker duties on the least-loaded
        # orphan of each failed LEI.
        for failed in report.failed_brokers:
            orphans = orphans_of(view, failed)
            result = promote_least_utilised(
                result, view, orphans, key=combined_utilisation
            )

        # Autoscaling from the fuzzy layer over the LSTM prediction.
        if len(self._window) >= 2:
            window = np.stack(self._window[-_WINDOW:])
            prediction = self.surrogate.predict(window)
            trend = float(self._objectives[-1] - self._objectives[-2]) if (
                len(self._objectives) >= 2
            ) else 0.0
            decision = self.scaler.infer({"qos": prediction, "trend": trend})
            if decision > 0.66:
                result = self._scale_up(result, view)
            elif decision < 0.33:
                result = self._scale_down(result, view)

        return rebalance_workers(result, view, max_moves=1)

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        """Append to the window and re-fit the recurrent surrogate."""
        features = self._global_features(metrics, view)
        energy = float(metrics.host_metrics[:, 4].mean())
        slo = float(metrics.host_metrics[:, 5].mean())
        objective = 0.5 * energy + 0.5 * slo
        self._window.append(features)
        self._objectives.append(objective)
        if len(self._window) > 4 * _WINDOW:
            self._window.pop(0)
            self._objectives.pop(0)

        # Periodic fine-tuning: a full pass of window->target pairs.
        if len(self._window) >= 4:
            for _ in range(self.fit_steps_per_interval):
                end = int(self.rng.integers(3, len(self._window)))
                start = max(0, end - _WINDOW)
                window = np.stack(self._window[start:end])
                self.surrogate.fit_step(window, self._objectives[end - 1])

    def memory_bytes(self) -> int:
        window_bytes = sum(w.nbytes for w in self._window)
        return 4 * 1024 ** 2 + self.surrogate.memory_bytes() + window_bytes

    # ------------------------------------------------------------------
    @staticmethod
    def _global_features(metrics: IntervalMetrics, view: SystemView) -> np.ndarray:
        host = metrics.host_metrics
        return np.array(
            [
                float(host[:, 0].mean()),   # cpu
                float(host[:, 1].mean()),   # ram
                float(host[:, 4].mean()),   # energy (per-host mean)
                float(host[:, 5].mean()),   # slo (per-host mean)
                len(metrics.topology.brokers) / max(metrics.topology.n_hosts, 1),
                metrics.n_active_tasks / 20.0,
            ]
        )

    def _scale_up(self, topology: Topology, view: SystemView) -> Topology:
        """Add a broker: split the hottest LEI at its coolest worker."""
        candidates = [
            b for b in sorted(topology.brokers) if len(topology.lei(b)) >= 3
        ]
        if not candidates:
            return topology

        def lei_load(broker: int) -> float:
            lei = topology.lei(broker)
            return float(
                np.mean([combined_utilisation(view, w) for w in lei])
            )

        hottest = max(candidates, key=lei_load)
        lei = topology.lei(hottest)
        chosen = min(lei, key=lambda w: combined_utilisation(view, w))
        result = topology.promote(chosen)
        for mover in [w for w in lei if w != chosen][::2]:
            result = result.reassign(mover, chosen)
        return result

    def _scale_down(self, topology: Topology, view: SystemView) -> Topology:
        """Remove a broker: merge the coolest LEI into the next coolest.

        Never drops below two brokers -- a single management point is
        the bottleneck failure mode the whole system avoids (§I).
        """
        brokers = sorted(topology.brokers)
        if len(brokers) < 3:
            return topology

        def broker_load(broker: int) -> float:
            return combined_utilisation(view, broker)

        coolest = min(brokers, key=broker_load)
        others = [b for b in brokers if b != coolest]
        target = min(others, key=broker_load)
        return topology.demote(coolest, target)
