"""ELBS baseline (Talaat et al., JNSM 2019) -- fuzzy + probabilistic NN.

Effective Load Balancing Strategy: task priorities come from a fuzzy
inference system over three inputs -- **SLO deadline**, **user-defined
priority** and **estimated processing time** -- and a *probabilistic
neural network* (PNN) acts as the QoS surrogate steering proactive task
allocation (§II).

A PNN keeps its training exemplars in memory (pattern layer = one unit
per stored sample), which is exactly why the paper measures ELBS as the
most memory-hungry baseline (Fig. 5e).  The surrogate here is the
regression form: Nadaraya-Watson kernel smoothing over stored
(state, objective) exemplars with an online-tuned bandwidth.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology
from .base import (
    ResilienceModel,
    merge_into_least_loaded,
    orphans_of,
    promote_least_utilised,
    rebalance_workers,
)
from .fuzzy import FuzzyRule, FuzzySystem, FuzzyVariable

__all__ = ["ELBS", "PNNSurrogate", "build_priority_system"]


def build_priority_system() -> FuzzySystem:
    """The three-input priority FIS described by the ELBS paper."""
    deadline = FuzzyVariable.uniform("deadline", ("tight", "medium", "loose"), 0.0, 1.0)
    priority = FuzzyVariable.uniform("priority", ("low", "medium", "high"), 0.0, 1.0)
    proc_time = FuzzyVariable.uniform("proc_time", ("short", "medium", "long"), 0.0, 1.0)
    output = FuzzyVariable.uniform("score", ("low", "medium", "high"), 0.0, 1.0)
    rules = [
        FuzzyRule((("deadline", "tight"),), "high"),
        FuzzyRule((("deadline", "loose"), ("priority", "low")), "low"),
        FuzzyRule((("priority", "high"),), "high"),
        FuzzyRule((("proc_time", "long"), ("deadline", "medium")), "high"),
        FuzzyRule((("proc_time", "short"), ("deadline", "loose")), "low"),
        FuzzyRule((("deadline", "medium"), ("priority", "medium")), "medium"),
        FuzzyRule((("proc_time", "medium"),), "medium"),
    ]
    return FuzzySystem([deadline, priority, proc_time], output, rules)


class PNNSurrogate:
    """Exemplar-storing kernel regressor (probabilistic NN, regression)."""

    def __init__(self, bandwidth: float = 0.3, capacity: int = 5000) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.capacity = capacity
        self._features: List[np.ndarray] = []
        self._targets: List[float] = []

    def __len__(self) -> int:
        return len(self._features)

    def add(self, features: np.ndarray, target: float) -> None:
        self._features.append(np.asarray(features, dtype=float))
        self._targets.append(float(target))
        if len(self._features) > self.capacity:
            self._features.pop(0)
            self._targets.pop(0)

    def predict(self, features: np.ndarray) -> float:
        """Kernel-weighted mean of stored targets."""
        if not self._features:
            return 0.0
        features = np.asarray(features, dtype=float)
        stored = np.stack(self._features)
        distances = ((stored - features) ** 2).sum(axis=1)
        weights = np.exp(-distances / (2.0 * self.bandwidth ** 2))
        total = weights.sum()
        if total < 1e-12:
            return float(np.mean(self._targets))
        return float(weights @ np.asarray(self._targets) / total)

    def tune_bandwidth(self, candidates=(0.15, 0.3, 0.6)) -> float:
        """Pick the bandwidth minimising leave-one-out error.

        This is ELBS's per-interval "fine-tuning": with a pattern layer
        instead of weights, adapting the model means re-tuning its
        smoothing parameter over the stored exemplars.
        """
        if len(self._features) < 5:
            return self.bandwidth
        stored = np.stack(self._features)
        targets = np.asarray(self._targets)
        sq_distances = ((stored[:, None, :] - stored[None, :, :]) ** 2).sum(axis=2)
        best_bw, best_err = self.bandwidth, np.inf
        for bandwidth in candidates:
            weights = np.exp(-sq_distances / (2.0 * bandwidth ** 2))
            np.fill_diagonal(weights, 0.0)
            denom = weights.sum(axis=1)
            valid = denom > 1e-12
            if not valid.any():
                continue
            predictions = (weights @ targets)[valid] / denom[valid]
            error = float(np.mean((predictions - targets[valid]) ** 2))
            if error < best_err:
                best_bw, best_err = bandwidth, error
        self.bandwidth = best_bw
        return best_bw

    def memory_bytes(self) -> int:
        return sum(f.nbytes + 8 for f in self._features) + 1024


class ELBS(ResilienceModel):
    """Fuzzy task priorities + PNN QoS surrogate, proactive balancing."""

    name = "ELBS"

    def __init__(self, exemplar_capacity: int = 5000) -> None:
        self.fis = build_priority_system()
        self.surrogate = PNNSurrogate(capacity=exemplar_capacity)
        self._last_priorities: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        # Fuzzy pass: per-host priority from aggregated task features
        # (deadline tightness, configured priority, processing estimate).
        if view.last_metrics is not None:
            metrics = view.last_metrics.host_metrics
            for row in range(metrics.shape[0]):
                self._last_priorities[row] = self.fis.infer(
                    {
                        "deadline": float(np.clip(metrics[row, 9], 0.0, 1.0)),
                        "priority": 0.5,
                        "proc_time": float(np.clip(metrics[row, 7], 0.0, 1.0)),
                    }
                )

        # Candidate set: proposal, per-failure promote/merge repairs,
        # plus a proactive rebalance (ELBS allocates "to edge nodes or
        # worker nodes as brokers to avoid system failures").
        candidates: List[Topology] = [proposal]
        current = proposal
        for failed in report.failed_brokers:
            orphans = orphans_of(view, failed)
            candidates.append(promote_least_utilised(current, view, orphans))
            candidates.append(merge_into_least_loaded(current, view, orphans))
        candidates.append(rebalance_workers(proposal, view))

        unique = {c.canonical_key(): c for c in candidates}
        best, best_score = proposal, np.inf
        for candidate in unique.values():
            score = self.surrogate.predict(self._topology_features(view, candidate))
            if score < best_score:
                best, best_score = candidate, score
        return best

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        """Store the realised (state, objective) exemplar and re-tune."""
        energy = float(metrics.host_metrics[:, 4].sum())
        slo = float(metrics.host_metrics[:, 5].sum())
        objective = 0.5 * energy + 0.5 * slo
        self.surrogate.add(
            self._topology_features(view, metrics.topology), objective
        )
        # Per-interval fine-tuning: bandwidth re-selection (the PNN's
        # only free parameter), an O(n^2) pass over the pattern layer.
        if len(self.surrogate) >= 5 and len(self.surrogate) <= 400:
            self.surrogate.tune_bandwidth()

    def memory_bytes(self) -> int:
        """Pattern layer dominates -- the Fig. 5e peak."""
        return 2 * 1024 ** 2 + self.surrogate.memory_bytes()

    # ------------------------------------------------------------------
    def _topology_features(self, view: SystemView, topology: Topology) -> np.ndarray:
        utilisation = view.utilisation_matrix()
        sizes = list(topology.lei_sizes().values())
        lei_loads = []
        for broker in topology.brokers:
            lei = topology.lei(broker)
            lei_loads.append(
                float(np.mean([utilisation[w, 0] for w in lei])) if lei else 0.0
            )
        return np.array(
            [
                float(utilisation[:, 0].mean()),
                float(utilisation[:, 0].max()),
                float(utilisation[:, 1].mean()),
                len(topology.brokers) / max(topology.n_hosts, 1),
                float(np.var(sizes)) if sizes else 0.0,
                max(lei_loads) if lei_loads else 0.0,
                float(np.mean(list(self._last_priorities.values())))
                if self._last_priorities
                else 0.5,
            ]
        )
