"""DYVERSE baseline (Wang et al., FGCS 2020) -- heuristic.

Dynamic VERtical Scaling in multi-tenant Edge environments: an ensemble
of three heuristics -- *system-aware* (host utilisation), *community-
aware* (LEI-level load) and *workload-aware* (task demand) -- assigns
priority scores to active applications and vertically scales their
resources.  For broker failures it "allocates the worker with the least
CPU utilization as the next broker of the same LEI" (§II), i.e. a fixed
Type-3 node-shift.

As a resilience model its decisions are nearly instantaneous (lowest
decision time in Fig. 5d); its overhead is the per-interval priority-
score update (Fig. 5f counts "dynamically updating the priority scores
in the heuristic models").
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology
from .base import (
    ResilienceModel,
    cpu_utilisation,
    orphans_of,
    promote_least_utilised,
)

__all__ = ["DYVERSE"]


class DYVERSE(ResilienceModel):
    """Heuristic-ensemble priority scoring with Type-3 broker repair."""

    name = "DYVERSE"

    def __init__(self) -> None:
        #: Priority score per application name, refreshed each interval.
        self.priorities: Dict[str, float] = {}
        #: Exponential moving averages feeding the three heuristics.
        self._system_load = 0.0
        self._community_load: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        result = proposal
        for failed in report.failed_brokers:
            orphans = orphans_of(view, failed)
            result = promote_least_utilised(
                result, view, orphans, key=cpu_utilisation
            )
        return result

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        """Update the three-heuristic priority ensemble.

        System-aware: overall utilisation pressure.  Community-aware:
        per-LEI load.  Workload-aware: demand per application class.
        The scores themselves steer DYVERSE's vertical-scaling choices;
        here their maintenance cost is what matters for the overhead
        comparison, so the bookkeeping mirrors the published ensemble.
        """
        utilisation = view.utilisation_matrix()
        self._system_load = 0.7 * self._system_load + 0.3 * float(
            utilisation[:, 0].mean()
        )
        for broker in metrics.topology.brokers:
            lei = metrics.topology.lei(broker)
            load = (
                float(np.mean([utilisation[w, 0] for w in lei])) if lei else 0.0
            )
            previous = self._community_load.get(broker, load)
            self._community_load[broker] = 0.7 * previous + 0.3 * load

        # Workload-aware scores from the observed per-host task demands.
        demand = metrics.host_metrics[:, 7]  # task_cpu_norm column
        system_score = 1.0 / (1.0 + self._system_load)
        for row in range(demand.shape[0]):
            community = self._community_load.get(row, self._system_load)
            score = (
                0.4 * system_score
                + 0.3 / (1.0 + community)
                + 0.3 / (1.0 + float(demand[row]))
            )
            self.priorities[f"host-{row}"] = score

    def memory_bytes(self) -> int:
        """Scores and moving averages only."""
        n_entries = len(self.priorities) + len(self._community_load) + 1
        return 256 * 1024 + 16 * n_entries
