"""ECLB baseline (Sharif et al., IET Communications 2020) -- meta-heuristic.

Energy-efficient Checkpointing and Load Balancing: Bayesian methods
classify hosts into **overloaded / normal / underloaded** and the
classification drives task migrations away from overloaded hosts (§II).
The classifier is a Gaussian naive Bayes over the utilisation vector,
fitted online against empirically labelled intervals.

Broker repair: orphans merge into the broker classified least loaded
(a Type-2 shift); overloaded brokers additionally shed workers to
underloaded peers.  The paper notes ECLB "only considers computational
overloads", which is preserved: the class boundaries look at CPU only.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..simulator.detection import FailureReport
from ..simulator.engine import SystemView
from ..simulator.metrics import IntervalMetrics
from ..simulator.topology import Topology
from .base import (
    ResilienceModel,
    merge_into_least_loaded,
    orphans_of,
)

__all__ = ["ECLB", "GaussianNaiveBayes"]

_CLASSES = ("underloaded", "normal", "overloaded")


class GaussianNaiveBayes:
    """Tiny online Gaussian naive Bayes over utilisation features."""

    def __init__(self, n_features: int) -> None:
        self.n_features = n_features
        self._sums = {c: np.zeros(n_features) for c in _CLASSES}
        self._sq_sums = {c: np.zeros(n_features) for c in _CLASSES}
        self._counts = {c: 0 for c in _CLASSES}

    def update(self, features: np.ndarray, label: str) -> None:
        if label not in self._counts:
            raise KeyError(f"unknown class {label!r}")
        features = np.asarray(features, dtype=float)
        self._sums[label] += features
        self._sq_sums[label] += features ** 2
        self._counts[label] += 1

    def predict(self, features: np.ndarray) -> str:
        """MAP class; falls back to thresholding before any training."""
        features = np.asarray(features, dtype=float)
        total = sum(self._counts.values())
        if total < len(_CLASSES):
            return _threshold_label(float(features[0]))
        best_class, best_score = _CLASSES[0], -np.inf
        for label in _CLASSES:
            count = self._counts[label]
            if count == 0:
                continue
            mean = self._sums[label] / count
            var = np.maximum(
                self._sq_sums[label] / count - mean ** 2, 1e-4
            )
            log_prior = np.log(count / total)
            log_likelihood = float(
                (-0.5 * np.log(2 * np.pi * var)
                 - 0.5 * (features - mean) ** 2 / var).sum()
            )
            score = log_prior + log_likelihood
            if score > best_score:
                best_class, best_score = label, score
        return best_class

    def memory_bytes(self) -> int:
        arrays = 2 * len(_CLASSES) * self.n_features
        return 8 * arrays + 64


def _threshold_label(cpu: float) -> str:
    if cpu > 0.8:
        return "overloaded"
    if cpu < 0.3:
        return "underloaded"
    return "normal"


class ECLB(ResilienceModel):
    """Bayesian host classification with Type-2 merges and shedding."""

    name = "ECLB"

    def __init__(self) -> None:
        self.classifier = GaussianNaiveBayes(n_features=4)

    # ------------------------------------------------------------------
    def repair(
        self,
        view: SystemView,
        report: FailureReport,
        proposal: Topology,
    ) -> Topology:
        labels = self._classify_hosts(view)
        result = proposal

        # Orphans merge into the least-loaded broker (Type-2).
        for failed in report.failed_brokers:
            orphans = orphans_of(view, failed)
            result = merge_into_least_loaded(result, view, orphans)

        # Shed one worker from each overloaded broker to an underloaded
        # peer, the checkpoint-and-migrate move of the original paper.
        underloaded_brokers = [
            b for b in sorted(result.brokers)
            if labels.get(b) == "underloaded" and view.hosts[b].alive
        ]
        if underloaded_brokers:
            for broker in sorted(result.brokers):
                if labels.get(broker) != "overloaded":
                    continue
                lei = [w for w in result.lei(broker) if view.hosts[w].alive]
                if not lei:
                    continue
                mover = max(
                    lei, key=lambda w: view.hosts[w].utilisation["cpu"]
                )
                target = underloaded_brokers[0]
                if target != broker:
                    result = result.reassign(mover, target)
        return result

    def observe(self, metrics: IntervalMetrics, view: SystemView) -> None:
        """Refit the Bayes classifier on this interval's observations."""
        utilisation = view.utilisation_matrix()
        for row in range(utilisation.shape[0]):
            label = _threshold_label(float(utilisation[row, 0]))
            self.classifier.update(utilisation[row], label)

    def memory_bytes(self) -> int:
        return 512 * 1024 + self.classifier.memory_bytes()

    # ------------------------------------------------------------------
    def _classify_hosts(self, view: SystemView) -> Dict[int, str]:
        utilisation = view.utilisation_matrix()
        return {
            host.host_id: self.classifier.predict(utilisation[host.host_id])
            for host in view.hosts
        }
