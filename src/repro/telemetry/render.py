"""Text renderings of telemetry snapshots.

Two audiences:

* :func:`render_metrics_text` -- the flat ``name value`` exposition
  served by the status endpoint's ``/metrics`` route (one metric per
  line, scrape-friendly, deterministic order).
* :func:`render_summary` -- a human-oriented table for the ``repro
  telemetry`` CLI subcommand and :mod:`examples.failure_drill`.
"""

from __future__ import annotations

from typing import List

from .registry import flatten_snapshot

__all__ = ["render_metrics_text", "render_summary"]


def render_metrics_text(snap: dict) -> str:
    """Flat ``name value`` lines (trailing newline included)."""
    lines = [f"{name} {_fmt(value)}" for name, value in flatten_snapshot(snap)]
    return "\n".join(lines) + "\n" if lines else ""


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return f"{value:.9g}"


def render_summary(snap: dict, title: str = "telemetry") -> str:
    """Pretty multi-section summary of one (possibly merged) snapshot."""
    out: List[str] = [f"== {title} =="]
    counters = snap.get("counters", {})
    if counters:
        out.append("-- counters --")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            out.append(f"  {name:<{width}}  {value}")
    gauges = snap.get("gauges", {})
    if gauges:
        out.append("-- gauges --")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            out.append(f"  {name:<{width}}  {_fmt(value)}")
    spans = snap.get("spans", {})
    if spans:
        out.append("-- spans --")
        width = max(len(name) for name in spans)
        for name, s in spans.items():
            if not s["count"]:
                out.append(f"  {name:<{width}}  n=0  (no completed timings)")
                continue
            mean = s["total_s"] / s["count"]
            out.append(
                f"  {name:<{width}}  n={s['count']}"
                f"  total={s['total_s']:.4f}s  mean={mean * 1e3:.3f}ms"
                f"  min={_ms(s['min_s'])}  max={_ms(s['max_s'])}"
            )
    histograms = snap.get("histograms", {})
    if histograms:
        out.append("-- histograms --")
        width = max(len(name) for name in histograms)
        for name, h in histograms.items():
            if not h["count"]:
                out.append(f"  {name:<{width}}  n=0  (no observations)")
                continue
            mean = h["sum"] / h["count"]
            out.append(
                f"  {name:<{width}}  n={h['count']}  mean={mean:.4g}"
                f"  min={_fmt(h['min'])}  max={_fmt(h['max'])}"
            )
            out.append(f"  {'':<{width}}  {_sparkline(h)}")
    return "\n".join(out)


def _ms(value) -> str:
    return "NaN" if value is None else f"{value * 1e3:.3f}ms"


_BARS = " .:-=+*#%@"


def _sparkline(h: dict) -> str:
    peak = max(h["counts"]) or 1
    cells = []
    labels = [f"{edge:g}" for edge in h["edges"]] + ["inf"]
    for label, count in zip(labels, h["counts"]):
        bar = _BARS[min(len(_BARS) - 1, (count * (len(_BARS) - 1)) // peak)]
        cells.append(f"{label}:{bar}")
    return "[" + " ".join(cells) + "]"
