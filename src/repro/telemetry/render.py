"""Text renderings of telemetry snapshots.

Three audiences:

* :func:`render_prometheus_text` -- Prometheus exposition format
  (``# HELP`` / ``# TYPE`` metadata, ``le``-labelled histogram
  buckets), the default body of the status endpoint's ``/metrics``
  route so stock scrapers ingest it without a relabelling shim.
* :func:`render_metrics_text` -- the legacy flat ``name value``
  exposition (one metric per line, deterministic order), still served
  under ``/metrics?format=flat``.
* :func:`render_summary` -- a human-oriented table for the ``repro
  telemetry`` CLI subcommand and :mod:`examples.failure_drill`.
"""

from __future__ import annotations

import re
from typing import List

from .registry import flatten_snapshot

__all__ = ["render_metrics_text", "render_prometheus_text", "render_summary"]


def render_metrics_text(snap: dict) -> str:
    """Flat ``name value`` lines (trailing newline included)."""
    lines = [f"{name} {_fmt(value)}" for name, value in flatten_snapshot(snap)]
    return "\n".join(lines) + "\n" if lines else ""


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Dotted registry name -> Prometheus metric name."""
    sanitized = _PROM_BAD.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def render_prometheus_text(snap: dict) -> str:
    """Prometheus text exposition (format version 0.0.4) of a snapshot.

    Mapping from the registry's metric families:

    * counters  -> ``counter`` samples with the ``_total`` suffix;
    * gauges    -> ``gauge`` samples;
    * histograms-> ``histogram`` families: cumulative ``_bucket``
      samples labelled ``le="<edge>"`` (plus the mandatory ``+Inf``
      bucket), then ``_sum`` and ``_count``;
    * spans     -> ``summary`` families named ``<name>_seconds``
      carrying ``_sum`` (total seconds) and ``_count`` (timings).

    Dots in registry names become underscores; the ``# HELP`` line
    keeps the original dotted name so the mapping stays recoverable.
    """
    out: List[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        prom = _prom_name(name) + "_total"
        out.append(f"# HELP {prom} repro counter {name}")
        out.append(f"# TYPE {prom} counter")
        out.append(f"{prom} {_fmt(value)}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        prom = _prom_name(name)
        out.append(f"# HELP {prom} repro gauge {name}")
        out.append(f"# TYPE {prom} gauge")
        out.append(f"{prom} {_fmt(value)}")
    for name, h in sorted(snap.get("histograms", {}).items()):
        prom = _prom_name(name)
        out.append(f"# HELP {prom} repro histogram {name}")
        out.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for edge, count in zip(h["edges"], h["counts"]):
            cumulative += count
            out.append(f'{prom}_bucket{{le="{edge:g}"}} {cumulative}')
        out.append(f'{prom}_bucket{{le="+Inf"}} {h["count"]}')
        out.append(f"{prom}_sum {_fmt(h['sum'])}")
        out.append(f"{prom}_count {h['count']}")
    for name, s in sorted(snap.get("spans", {}).items()):
        prom = _prom_name(name) + "_seconds"
        out.append(f"# HELP {prom} repro span {name}")
        out.append(f"# TYPE {prom} summary")
        out.append(f"{prom}_sum {_fmt(s['total_s'])}")
        out.append(f"{prom}_count {s['count']}")
    return "\n".join(out) + "\n" if out else ""


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return f"{value:.9g}"


def render_summary(snap: dict, title: str = "telemetry") -> str:
    """Pretty multi-section summary of one (possibly merged) snapshot."""
    out: List[str] = [f"== {title} =="]
    counters = snap.get("counters", {})
    if counters:
        out.append("-- counters --")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            out.append(f"  {name:<{width}}  {value}")
    gauges = snap.get("gauges", {})
    if gauges:
        out.append("-- gauges --")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            out.append(f"  {name:<{width}}  {_fmt(value)}")
    spans = snap.get("spans", {})
    if spans:
        out.append("-- spans --")
        width = max(len(name) for name in spans)
        for name, s in spans.items():
            if not s["count"]:
                out.append(f"  {name:<{width}}  n=0  (no completed timings)")
                continue
            mean = s["total_s"] / s["count"]
            out.append(
                f"  {name:<{width}}  n={s['count']}"
                f"  total={s['total_s']:.4f}s  mean={mean * 1e3:.3f}ms"
                f"  min={_ms(s['min_s'])}  max={_ms(s['max_s'])}"
            )
    histograms = snap.get("histograms", {})
    if histograms:
        out.append("-- histograms --")
        width = max(len(name) for name in histograms)
        for name, h in histograms.items():
            if not h["count"]:
                out.append(f"  {name:<{width}}  n=0  (no observations)")
                continue
            mean = h["sum"] / h["count"]
            out.append(
                f"  {name:<{width}}  n={h['count']}  mean={mean:.4g}"
                f"  min={_fmt(h['min'])}  max={_fmt(h['max'])}"
            )
            out.append(f"  {'':<{width}}  {_sparkline(h)}")
    return "\n".join(out)


def _ms(value) -> str:
    return "NaN" if value is None else f"{value * 1e3:.3f}ms"


_BARS = " .:-=+*#%@"


def _sparkline(h: dict) -> str:
    peak = max(h["counts"]) or 1
    cells = []
    labels = [f"{edge:g}" for edge in h["edges"]] + ["inf"]
    for label, count in zip(labels, h["counts"]):
        bar = _BARS[min(len(_BARS) - 1, (count * (len(_BARS) - 1)) // peak)]
        cells.append(f"{label}:{bar}")
    return "[" + " ".join(cells) + "]"
