"""Low-overhead metrics registry: counters, gauges, histograms, spans.

Design constraints (see :mod:`repro.telemetry` for the full model):

* **Determinism** -- :meth:`MetricsRegistry.snapshot` returns a plain
  dict with *sorted* keys at every level, so two registries that saw
  the same events produce byte-identical JSON.
* **Mergeability** -- :func:`merge_snapshots` is associative and
  commutative, so per-worker snapshots can be folded into one fleet
  view in any order (counters sum, gauges keep the max, histograms
  add bucket-wise, spans combine count/total/min/max).
* **Cheap when disabled** -- every mutator checks one attribute and
  returns; the disabled :meth:`Span.time` path hands back a shared
  no-op context manager, allocating nothing.
* **No wall-clock in records** -- timings live only here; nothing in
  a snapshot ever feeds back into simulation state, so bit-identity
  of campaign records is structurally untouched.

Only stdlib imports: this module must stay importable from every
layer (nn, core, simulator, serving) without cycles.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricsRegistry",
    "merge_snapshots",
    "flatten_snapshot",
    "DURATION_EDGES_S",
    "SIZE_EDGES",
]

#: Default bucket edges (seconds) for span-duration histograms.
DURATION_EDGES_S: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

#: Default bucket edges for size-like histograms (batch sizes etc.).
SIZE_EDGES: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value = 0
        self._registry = registry

    def inc(self, n: int = 1) -> None:
        if self._registry.enabled:
            self.value += n

    def add(self, n: int) -> None:
        if self._registry.enabled:
            self.value += n


class Gauge:
    """Last-write-wins float metric (merged by max across workers)."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value = 0.0
        self._registry = registry

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram; ``counts[i]`` holds values <= edges[i].

    The final bucket (``counts[-1]``) is the overflow bucket for
    values above the last edge.  Edges are fixed at creation so two
    workers' histograms of the same name always merge bucket-wise.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum", "min", "max", "_registry")

    def __init__(
        self, name: str, edges: Sequence[float], registry: "MetricsRegistry"
    ) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram {name!r} needs ascending bucket edges")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._registry = registry

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        lo, hi = 0, len(self.edges)
        while lo < hi:  # bisect_right over the edges
            mid = (lo + hi) // 2
            if value <= self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)


class _NullTimer:
    """Shared no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _SpanTimer:
    """One active timing window; records into its span on exit."""

    __slots__ = ("_span", "_start")

    def __init__(self, span: "Span") -> None:
        self._span = span
        self._start = time.perf_counter()

    def __enter__(self) -> "_SpanTimer":
        return self

    def __exit__(self, *exc) -> None:
        self._span._record(time.perf_counter() - self._start)


class Span:
    """Named timing aggregate (count / total / min / max seconds).

    Usable three ways::

        with registry.span("sim.interval").time(): ...   # explicit timer
        with registry.span("sim.interval"): ...          # CM shorthand
        @registry.span("sim.interval")                   # decorator
        def hot(): ...

    Timers are independent objects, so spans nest and re-enter safely
    (recursion included); the CM shorthand keeps a stack of start
    times for the same reason.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "_registry", "_starts")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None
        self._registry = registry
        self._starts: List[float] = []

    def _record(self, elapsed: float) -> None:
        if not self._registry.enabled:
            return
        self.count += 1
        self.total_s += elapsed
        self.min_s = elapsed if self.min_s is None else min(self.min_s, elapsed)
        self.max_s = elapsed if self.max_s is None else max(self.max_s, elapsed)

    def time(self):
        """A context manager timing one window (no-op when disabled)."""
        if not self._registry.enabled:
            return _NULL_TIMER
        return _SpanTimer(self)

    # Context-manager shorthand: ``with span: ...``
    def __enter__(self) -> "Span":
        if self._registry.enabled:
            self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        if self._starts:
            self._record(time.perf_counter() - self._starts.pop())

    # Decorator support: ``@span`` wraps fn in a timer per call.
    def __call__(self, fn):
        import functools

        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            if not self._registry.enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self._record(time.perf_counter() - start)

        return wrapped


class MetricsRegistry:
    """A family of named metrics with a deterministic snapshot.

    Metric handles are created lazily and cached, so hot paths can
    either keep a module-level handle or call ``registry.counter(n)``
    per event (one dict hit).  ``enabled`` gates every mutator.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: Dict[str, Span] = {}

    # -- handle factories ------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name, self)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name, self)
        return metric

    def histogram(
        self, name: str, edges: Sequence[float] = DURATION_EDGES_S
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, edges, self)
        elif tuple(float(e) for e in edges) != metric.edges:
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return metric

    def span(self, name: str) -> Span:
        metric = self._spans.get(name)
        if metric is None:
            metric = self._spans[name] = Span(name, self)
        return metric

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view with sorted keys at every level.

        Zero-valued metrics are included: a snapshot enumerates what
        was *instrumented*, not just what fired, so merged views stay
        stable as workers progress at different rates.
        """
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self._histograms.items())
            },
            "spans": {
                name: {
                    "count": s.count,
                    "total_s": s.total_s,
                    "min_s": s.min_s,
                    "max_s": s.max_s,
                }
                for name, s in sorted(self._spans.items())
            },
        }

    def delta(self, since: dict) -> dict:
        """Snapshot of activity since a previous :meth:`snapshot`.

        Counters and histogram counts/sums subtract; gauges report the
        current value; span/histogram min/max report the *overall*
        extremes (extremes are not invertible, documented caveat).
        """
        now = self.snapshot()
        counters = {
            name: value - since.get("counters", {}).get(name, 0)
            for name, value in now["counters"].items()
        }
        histograms = {}
        for name, h in now["histograms"].items():
            prev = since.get("histograms", {}).get(name)
            if prev is None or prev.get("edges") != h["edges"]:
                histograms[name] = h
                continue
            histograms[name] = {
                "edges": h["edges"],
                "counts": [a - b for a, b in zip(h["counts"], prev["counts"])],
                "count": h["count"] - prev["count"],
                "sum": h["sum"] - prev["sum"],
                "min": h["min"],
                "max": h["max"],
            }
        spans = {}
        for name, s in now["spans"].items():
            prev = since.get("spans", {}).get(name)
            if prev is None:
                spans[name] = s
                continue
            spans[name] = {
                "count": s["count"] - prev["count"],
                "total_s": s["total_s"] - prev["total_s"],
                "min_s": s["min_s"],
                "max_s": s["max_s"],
            }
        return {
            "counters": counters,
            "gauges": now["gauges"],
            "histograms": histograms,
            "spans": spans,
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a snapshot's values into this registry's live metrics."""
        for name, value in snap.get("counters", {}).items():
            counter = self.counter(name)
            counter.value += int(value)
        for name, value in snap.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.value = max(gauge.value, float(value))
        for name, h in snap.get("histograms", {}).items():
            metric = self.histogram(name, h["edges"])
            if list(metric.edges) != list(h["edges"]):
                raise ValueError(f"histogram {name!r} edges mismatch in merge")
            metric.counts = [a + b for a, b in zip(metric.counts, h["counts"])]
            metric.count += h["count"]
            metric.sum += h["sum"]
            metric.min = _opt_min(metric.min, h["min"])
            metric.max = _opt_max(metric.max, h["max"])
        for name, s in snap.get("spans", {}).items():
            span = self.span(name)
            span.count += s["count"]
            span.total_s += s["total_s"]
            span.min_s = _opt_min(span.min_s, s["min_s"])
            span.max_s = _opt_max(span.max_s, s["max_s"])

    def reset(self) -> None:
        """Zero every metric in place (handles stay valid)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for h in self._histograms.values():
            h.counts = [0] * (len(h.edges) + 1)
            h.count = 0
            h.sum = 0.0
            h.min = None
            h.max = None
        for s in self._spans.values():
            s.count = 0
            s.total_s = 0.0
            s.min_s = None
            s.max_s = None
            s._starts.clear()


def _opt_min(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _opt_max(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def merge_snapshots(*snapshots: Iterable[dict]) -> dict:
    """Merge snapshot dicts into one (associative and commutative).

    Counters sum; gauges keep the max; histograms with matching edges
    add bucket-wise (an edge mismatch is a loud error -- edges are
    fixed at registration exactly so this cannot happen silently);
    spans combine count/total/min/max.  The result has sorted keys at
    every level, like :meth:`MetricsRegistry.snapshot`.
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        if snap:
            merged.merge_snapshot(snap)
    return merged.snapshot()


def flatten_snapshot(snap: dict) -> List[Tuple[str, float]]:
    """``(name, value)`` pairs for a flat ``name value`` text export.

    Histograms flatten to ``<name>_count`` / ``<name>_sum`` plus one
    ``<name>_bucket{le=...}`` line per edge (cumulative, Prometheus
    style); spans flatten to ``_count`` / ``_total_seconds``.
    """
    lines: List[Tuple[str, float]] = []
    for name, value in snap.get("counters", {}).items():
        lines.append((name, value))
    for name, value in snap.get("gauges", {}).items():
        lines.append((name, value))
    for name, h in snap.get("histograms", {}).items():
        cumulative = 0
        for edge, count in zip(h["edges"], h["counts"]):
            cumulative += count
            lines.append((f'{name}_bucket{{le="{edge:g}"}}', cumulative))
        lines.append((f'{name}_bucket{{le="+Inf"}}', h["count"]))
        lines.append((f"{name}_count", h["count"]))
        lines.append((f"{name}_sum", h["sum"]))
    for name, s in snap.get("spans", {}).items():
        lines.append((f"{name}_count", s["count"]))
        lines.append((f"{name}_total_seconds", s["total_s"]))
    return lines
