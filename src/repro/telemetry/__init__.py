"""Fleet-wide telemetry: the observability substrate for the repro.

CAROL's thesis is *acting on measured confidence*; this package makes
the reproduction itself measurable.  It is a dependency-free (stdlib
only) metrics layer threaded through every hot path:

* the simulator interval loop (``sim.interval`` span, task counters),
* GON ascent (``gon.ascent`` span, step/convergence counters,
  batch-size histogram),
* the surrogate score cache and tabu search (hit/miss/eviction and
  iteration/evaluation counters),
* the :class:`~repro.serving.GONScoringService` micro-batcher (drain
  window span, batch-size and bucket-occupancy histograms, overlay
  install/eviction counters),
* wire framing (frames/bytes sent and received).

The model
---------
A :class:`~repro.telemetry.registry.MetricsRegistry` holds named
counters, gauges, fixed-edge histograms and timing spans.  Each
*process* owns one registry (module attribute, reachable through
:func:`get_registry`); model instances (CAROL, scorers) additionally
keep small private registries that :func:`repro.experiments.campaign.run_cell`
folds into the process registry after every cell.  Workers ship
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` dicts to
the campaign parent (results queue) and to the scoring service
(``StatsUpdate`` wire frames), where
:func:`~repro.telemetry.registry.merge_snapshots` -- associative and
commutative -- folds them into the fleet-wide view served by the
``/status`` endpoint and attached to ``--record-json`` payloads.

Wall-clock values live **only** in telemetry.  Records and their
``metrics`` rows never read from a registry, so serial/process/fleet
bit-identity is structurally unaffected; disabling telemetry
(``REPRO_TELEMETRY=0`` or :func:`set_enabled`) changes timings, never
results.

Module-level helpers (:func:`counter`, :func:`span`, ...) proxy the
process registry so instrumented modules can create handles at import
time with no reference to this package's internals.
"""

from __future__ import annotations

import os

from .registry import (
    DURATION_EDGES_S,
    SIZE_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    flatten_snapshot,
    merge_snapshots,
)
from .render import render_metrics_text, render_prometheus_text, render_summary

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricsRegistry",
    "merge_snapshots",
    "flatten_snapshot",
    "render_metrics_text",
    "render_prometheus_text",
    "render_summary",
    "DURATION_EDGES_S",
    "SIZE_EDGES",
    "get_registry",
    "set_enabled",
    "is_enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "snapshot",
    "delta",
    "reset",
]

#: The process-wide registry.  ``REPRO_TELEMETRY=0`` starts it
#: disabled (the zero-overhead path); :func:`set_enabled` flips it at
#: runtime.  Forked campaign workers inherit the parent's setting.
_REGISTRY = MetricsRegistry(
    enabled=os.environ.get("REPRO_TELEMETRY", "1") not in ("0", "false", "off")
)


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def set_enabled(enabled: bool) -> None:
    """Enable/disable every metric bound to the process registry."""
    _REGISTRY.enabled = bool(enabled)


def is_enabled() -> bool:
    return _REGISTRY.enabled


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, edges=DURATION_EDGES_S) -> Histogram:
    return _REGISTRY.histogram(name, edges)


def span(name: str) -> Span:
    return _REGISTRY.span(name)


def snapshot() -> dict:
    return _REGISTRY.snapshot()


def delta(since: dict) -> dict:
    return _REGISTRY.delta(since)


def reset() -> None:
    _REGISTRY.reset()
