"""Shared experiment assets: traces, trained surrogates, model factory.

The paper's protocol (§IV-D, §V): collect a DeFog execution trace on
the testbed, train the GON offline on it, then evaluate every
resilience scheme on unseen AIoT workloads.  This module packages that
pipeline so each figure's experiment reuses the same trained assets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from ..baselines import (
    AlwaysFineTune,
    DYVERSE,
    ECLB,
    ELBS,
    FRAS,
    GANSurrogate,
    LBOS,
    NeverFineTune,
    StepGAN,
    TopoMAD,
    TraditionalSurrogate,
    WithGAN,
    WithTraditionalSurrogate,
)
from ..config import ExperimentConfig
from ..core import (
    CAROL,
    CAROLConfig,
    GONDiscriminator,
    GONInput,
    ProactiveCAROL,
    TrainingConfig,
    TrainingHistory,
    train_gon,
)
from ..core.interface import ResilienceModel
from ..core.nodeshift import random_node_shift
from ..simulator.trace import Trace, collect_trace

__all__ = [
    "BASELINE_NAMES",
    "ABLATION_NAMES",
    "PROACTIVE_NAME",
    "TrainedAssets",
    "defog_config",
    "collect_defog_trace",
    "prepare_assets",
    "build_model",
]

BASELINE_NAMES = (
    "DYVERSE",
    "ECLB",
    "LBOS",
    "ELBS",
    "FRAS",
    "TopoMAD",
    "StepGAN",
)
ABLATION_NAMES = (
    "CAROL-AlwaysFT",
    "CAROL-NeverFT",
    "CAROL-WithGAN",
    "CAROL-FFSurrogate",
)
#: The §VI proactive scheme's campaign-model name (fleet-capable).
PROACTIVE_NAME = "CAROL-Proactive"


@dataclass
class TrainedAssets:
    """Everything trained offline before the evaluation runs."""

    trace: Trace
    samples: List[GONInput]
    objectives: List[float]
    gon_state: Dict[str, np.ndarray]
    gon_hidden: int
    gon_layers: int
    training_history: TrainingHistory
    gan_seed: int = 1
    seed: int = 0

    def fresh_gon(self) -> GONDiscriminator:
        """A GON initialised to the offline-trained weights."""
        model = GONDiscriminator(
            np.random.default_rng(self.seed),
            hidden=self.gon_hidden,
            n_layers=self.gon_layers,
        )
        model.load_state_dict(self.gon_state)
        return model


def defog_config(config: ExperimentConfig) -> ExperimentConfig:
    """Same federation, DeFog workloads (the training environment)."""
    return replace(
        config,
        workload=replace(config.workload, suite="defog"),
    )


def collect_defog_trace(
    config: ExperimentConfig, n_intervals: int
) -> Trace:
    """The Λ-collection protocol: DeFog run, topology shuffled every 10."""
    return collect_trace(
        defog_config(config),
        n_intervals=n_intervals,
        topology_mutator=random_node_shift,
        mutate_every=10,
    )


def prepare_assets(
    config: ExperimentConfig,
    trace_intervals: int = 200,
    gon_hidden: int = 48,
    gon_layers: int = 3,
    training: Optional[TrainingConfig] = None,
) -> TrainedAssets:
    """Collect the trace and train the GON offline (Algorithm 1).

    Defaults are CI-scale; the paper-scale run uses
    ``trace_intervals=1000, gon_hidden=128`` and the stock
    :class:`TrainingConfig`.
    """
    trace = collect_defog_trace(config, trace_intervals)
    samples = [GONInput(s.metrics, s.schedule, s.adjacency) for s in trace.samples]
    objectives = [s.objective for s in trace.samples]

    gon = GONDiscriminator(
        np.random.default_rng(config.seed), hidden=gon_hidden, n_layers=gon_layers
    )
    training = training or TrainingConfig(
        epochs=10, batch_size=16, learning_rate=1e-3, seed=config.seed
    )
    history = train_gon(gon, samples, training)

    return TrainedAssets(
        trace=trace,
        samples=samples,
        objectives=objectives,
        gon_state=gon.state_dict(),
        gon_hidden=gon_hidden,
        gon_layers=gon_layers,
        training_history=history,
        seed=config.seed,
    )


def build_model(
    name: str,
    assets: TrainedAssets,
    config: ExperimentConfig,
    carol_config: Optional[CAROLConfig] = None,
    scorer_backend: str = "exact",
) -> ResilienceModel:
    """Instantiate any §V scheme by name with shared trained assets.

    ``scorer_backend`` selects the GON ascent engine for CAROL-family
    schemes (``repro.core.scoring.BACKENDS``); ``"exact"`` keeps the
    default scorer construction so that path stays byte-for-byte the
    historical one.  Non-GON surrogates ignore it.
    """
    alpha, beta = config.alpha, config.beta
    carol_config = carol_config or CAROLConfig(seed=config.seed)

    def gon_scorer(gon):
        # Only materialise an explicit scorer off the default path:
        # passing scorer=None keeps CAROL's own LocalScorer(exact).
        if scorer_backend == "exact":
            return None
        from ..core.scoring import LocalScorer

        return LocalScorer(gon, backend=scorer_backend)

    if name == "CAROL":
        gon = assets.fresh_gon()
        return CAROL(gon, alpha, beta, carol_config, scorer=gon_scorer(gon))
    if name == PROACTIVE_NAME:
        gon = assets.fresh_gon()
        return ProactiveCAROL(
            gon, alpha, beta, carol_config, scorer=gon_scorer(gon)
        )
    if name == "CAROL-AlwaysFT":
        gon = assets.fresh_gon()
        return AlwaysFineTune(
            gon, alpha, beta, carol_config, scorer=gon_scorer(gon)
        )
    if name == "CAROL-NeverFT":
        gon = assets.fresh_gon()
        return NeverFineTune(
            gon, alpha, beta, carol_config, scorer=gon_scorer(gon)
        )
    if name == "CAROL-WithGAN":
        n_hosts = config.federation.n_hosts
        surrogate = GANSurrogate(
            n_hosts, np.random.default_rng(assets.gan_seed)
        )
        surrogate.fit(assets.samples, epochs=2)
        return WithGAN(surrogate, alpha, beta, carol_config)
    if name == "CAROL-FFSurrogate":
        surrogate = TraditionalSurrogate(np.random.default_rng(config.seed))
        surrogate.fit(
            assets.samples,
            assets.objectives,
            epochs=5,
            rng=np.random.default_rng(config.seed),
        )
        return WithTraditionalSurrogate(surrogate, alpha, beta, carol_config)
    if name == "DYVERSE":
        return DYVERSE()
    if name == "ECLB":
        return ECLB()
    if name == "LBOS":
        return LBOS(seed=config.seed)
    if name == "ELBS":
        return ELBS()
    if name == "FRAS":
        return FRAS(seed=config.seed)
    if name == "TopoMAD":
        return TopoMAD(seed=config.seed)
    if name == "StepGAN":
        return StepGAN(seed=config.seed)
    raise ValueError(f"unknown model {name!r}")
