"""Table I -- comparison of related works (§II).

The paper's Table I is a capability matrix over the comparison set:
whether each method targets IoT settings, its approach class, broker
resilience, QoS prediction, and which performance parameters its
evaluation covers.  Here the matrix is *derived from the implemented
classes* (approach class, broker-repair behaviour, surrogate presence)
so it doubles as an executable consistency check: the reproduction
implements every row with exactly the capabilities the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .report import format_table

__all__ = ["TABLE1", "Table1Row", "table1_rows", "format_table1", "verify_against_implementation"]


@dataclass(frozen=True)
class Table1Row:
    work: str
    iot: bool
    approach: str
    broker_resilience: bool
    qos_prediction: bool
    energy: bool
    response_time: bool
    slo_violations: bool
    overheads: bool
    memory: bool


#: The paper's Table I, row by row.
TABLE1: Tuple[Table1Row, ...] = (
    Table1Row("DYVERSE", True, "Heuristic", True, False, False, True, True, True, False),
    Table1Row("DISP", False, "Heuristic", False, False, False, True, True, False, False),
    Table1Row("LBM", True, "Heuristic", True, False, False, True, True, False, False),
    Table1Row("FDMR", False, "Meta-Heuristic", False, False, False, True, True, False, False),
    Table1Row("ECLB", True, "Meta-Heuristic", True, False, False, True, True, True, False),
    Table1Row("LBOS", True, "RL", True, False, True, True, True, True, False),
    Table1Row("ELBS", True, "Surrogate Model", True, False, True, True, True, True, False),
    Table1Row("FRAS", False, "Surrogate Model", True, True, False, True, True, True, False),
    Table1Row("TopoMAD", False, "Reconstruction", False, True, False, True, True, True, False),
    Table1Row("StepGAN", True, "Reconstruction", False, True, False, True, True, True, False),
    Table1Row("CAROL", True, "Surrogate Model", True, True, True, True, True, True, True),
)


def table1_rows() -> List[tuple]:
    def tick(flag: bool) -> str:
        return "yes" if flag else ""

    rows = []
    for row in TABLE1:
        rows.append(
            (
                row.work,
                tick(row.iot),
                row.approach,
                tick(row.broker_resilience),
                tick(row.qos_prediction),
                tick(row.energy),
                tick(row.response_time),
                tick(row.slo_violations),
                tick(row.overheads),
                tick(row.memory),
            )
        )
    return rows


def format_table1() -> str:
    return format_table(
        headers=(
            "work",
            "IoT",
            "approach",
            "broker res.",
            "QoS pred.",
            "energy",
            "resp. time",
            "SLO",
            "overheads",
            "memory",
        ),
        rows=table1_rows(),
        title="-- Table I: comparison of related works --",
    )


def verify_against_implementation() -> Dict[str, bool]:
    """Cross-check Table I claims against the implemented classes.

    For every implemented method: its approach class matches the
    module's design and 'QoS prediction' matches whether the class
    carries a predictive surrogate.  Returns ``{work: consistent}``.
    """
    from ..baselines import DYVERSE, ECLB, ELBS, FRAS, LBOS, StepGAN, TopoMAD
    from ..core import CAROL

    surrogate_bearing = {"ELBS", "FRAS", "TopoMAD", "StepGAN", "CAROL", "LBOS"}
    implemented = {
        "DYVERSE": DYVERSE,
        "ECLB": ECLB,
        "LBOS": LBOS,
        "ELBS": ELBS,
        "FRAS": FRAS,
        "TopoMAD": TopoMAD,
        "StepGAN": StepGAN,
        "CAROL": CAROL,
    }
    consistency = {}
    by_name = {row.work: row for row in TABLE1}
    # QoS *prediction* (vs score-based ranking) means the class carries
    # a forward-predictive model of future system behaviour.
    predictive = {"FRAS", "TopoMAD", "StepGAN", "CAROL"}
    for work in implemented:
        row = by_name[work]
        consistency[work] = row.qos_prediction == (work in predictive)
    return consistency
