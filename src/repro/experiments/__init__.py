"""``repro.experiments`` -- one module per paper table/figure.

See DESIGN.md §4 for the experiment index.  Each module exposes a
``run_*`` entry point returning structured results and a ``format_*``
helper printing the same rows/series the paper's artifact shows.
"""

from .calibration import (
    ABLATION_NAMES,
    BASELINE_NAMES,
    TrainedAssets,
    build_model,
    collect_defog_trace,
    prepare_assets,
)
from .campaign import (
    CampaignConfig,
    CampaignResult,
    DETERMINISTIC_METRICS,
    GRID_IDENTITY_FIELDS,
    RunRecord,
    RunTask,
    campaign_config_hash,
    campaign_grid_identity,
    canonical_model_name,
    ci_campaign_config,
    fleet_ci_campaign_config,
    plan_tasks,
    prepare_campaign_assets,
    record_from_payload,
    record_to_payload,
    run_campaign,
)
from .fig2_confidence import Fig2Config, Fig2Result, format_fig2, run_fig2
from .fig4_training import Fig4Config, format_fig4, run_fig4
from .fig5_comparison import (
    Fig5Config,
    METRIC_PANELS,
    format_results,
    headline_deltas,
    run_fig5,
)
from .fig6_sensitivity import (
    Fig6Config,
    GAMMA_GRID,
    LAYER_GRID,
    SweepPoint,
    TABU_GRID,
    format_sweep,
    run_learning_rate_sweep,
    run_memory_sweep,
    run_tabu_sweep,
)
from .report import format_relative_table, format_table, sparkline
from .runner import EDGE_SLOWDOWN, ExperimentResult, run_experiment
from .table1_features import (
    TABLE1,
    Table1Row,
    format_table1,
    table1_rows,
    verify_against_implementation,
)

__all__ = [
    "run_experiment",
    "ExperimentResult",
    "EDGE_SLOWDOWN",
    "CampaignConfig",
    "CampaignResult",
    "RunTask",
    "RunRecord",
    "DETERMINISTIC_METRICS",
    "canonical_model_name",
    "GRID_IDENTITY_FIELDS",
    "campaign_config_hash",
    "campaign_grid_identity",
    "record_from_payload",
    "record_to_payload",
    "plan_tasks",
    "prepare_campaign_assets",
    "run_campaign",
    "ci_campaign_config",
    "fleet_ci_campaign_config",
    "prepare_assets",
    "build_model",
    "collect_defog_trace",
    "TrainedAssets",
    "BASELINE_NAMES",
    "ABLATION_NAMES",
    "Fig2Config",
    "Fig2Result",
    "run_fig2",
    "format_fig2",
    "Fig4Config",
    "run_fig4",
    "format_fig4",
    "Fig5Config",
    "run_fig5",
    "format_results",
    "headline_deltas",
    "METRIC_PANELS",
    "Fig6Config",
    "SweepPoint",
    "run_learning_rate_sweep",
    "run_memory_sweep",
    "run_tabu_sweep",
    "format_sweep",
    "GAMMA_GRID",
    "LAYER_GRID",
    "TABU_GRID",
    "TABLE1",
    "Table1Row",
    "table1_rows",
    "format_table1",
    "verify_against_implementation",
    "format_table",
    "format_relative_table",
    "sparkline",
]
