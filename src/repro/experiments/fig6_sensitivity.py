"""Fig. 6 -- sensitivity analysis (§V-E).

Three sweeps, each reporting the paper's four series (prediction MSE,
scheduling/decision time, energy, SLO violation rate):

(a) **learning rate** gamma of the eq.-1 ascent, over
    {1e-5, 1e-4, 1e-3, 1e-2, 1e-1} -- too-small gammas converge slowly
    (time up), too-large ones fail to converge (MSE/QoS up);
(b) **memory footprint** via the GON layer count -- deeper models
    predict better but generate slower (the paper's 0.25-5 GB axis);
(c) **tabu list size** over {5, 10, 50, 100, 500}.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from ..config import ExperimentConfig, ci_scale
from ..core import CAROL, CAROLConfig, GONDiscriminator, TrainingConfig, evaluate, train_gon
from .calibration import TrainedAssets, prepare_assets
from .report import format_table
from .runner import run_experiment

__all__ = [
    "Fig6Config",
    "SweepPoint",
    "run_learning_rate_sweep",
    "run_memory_sweep",
    "run_tabu_sweep",
    "format_sweep",
]

GAMMA_GRID = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)
LAYER_GRID = (1, 2, 3, 4)
TABU_GRID = (5, 10, 50, 100, 500)


@dataclass
class Fig6Config:
    base: ExperimentConfig = field(default_factory=lambda: ci_scale())
    eval_intervals: int = 15
    trace_intervals: int = 120
    gon_hidden: int = 48
    gon_layers: int = 3


@dataclass
class SweepPoint:
    """One x-axis point of a Fig. 6 panel."""

    parameter: float
    mse: float
    decision_time_s: float
    energy_kwh: float
    slo_violation_rate: float
    memory_mb: float = 0.0

    def row(self) -> tuple:
        return (
            self.parameter,
            self.mse,
            self.decision_time_s,
            self.energy_kwh,
            self.slo_violation_rate,
            self.memory_mb,
        )


def _evaluate_point(
    assets: TrainedAssets,
    config: Fig6Config,
    carol_config: CAROLConfig,
    model: Optional[GONDiscriminator] = None,
) -> SweepPoint:
    """Run CAROL briefly and compute the panel metrics."""
    model = model or assets.fresh_gon()
    test_samples = assets.samples[-20:]
    mse, _conf = evaluate(
        model,
        test_samples,
        gamma=carol_config.gamma,
        steps=carol_config.surrogate_steps,
    )

    base = replace(assets_config(config), n_intervals=config.eval_intervals)
    carol = CAROL(model, base.alpha, base.beta, carol_config)
    result = run_experiment(carol, base)
    summary = result.summary()
    return SweepPoint(
        parameter=0.0,
        mse=mse,
        decision_time_s=summary["decision_time_s"],
        energy_kwh=summary["energy_kwh"],
        slo_violation_rate=summary["slo_violation_rate"],
        memory_mb=model.footprint_bytes() / 1024 ** 2,
    )


def assets_config(config: Fig6Config) -> ExperimentConfig:
    return config.base


def run_learning_rate_sweep(
    config: Optional[Fig6Config] = None,
    assets: Optional[TrainedAssets] = None,
    grid: Sequence[float] = GAMMA_GRID,
) -> List[SweepPoint]:
    """Fig. 6(a): sweep the eq.-1 step size gamma."""
    config = config or Fig6Config()
    assets = assets or prepare_assets(
        config.base,
        trace_intervals=config.trace_intervals,
        gon_hidden=config.gon_hidden,
        gon_layers=config.gon_layers,
    )
    points = []
    for gamma in grid:
        carol_config = CAROLConfig(gamma=gamma, seed=config.base.seed)
        point = _evaluate_point(assets, config, carol_config)
        point.parameter = gamma
        points.append(point)
    return points


def run_memory_sweep(
    config: Optional[Fig6Config] = None,
    grid: Sequence[int] = LAYER_GRID,
) -> List[SweepPoint]:
    """Fig. 6(b): sweep the GON depth (the memory-footprint axis)."""
    config = config or Fig6Config()
    # The trace is shared; each point trains its own GON depth.
    assets = prepare_assets(
        config.base,
        trace_intervals=config.trace_intervals,
        gon_hidden=config.gon_hidden,
        gon_layers=config.gon_layers,
    )
    points = []
    for layers in grid:
        gon = GONDiscriminator(
            np.random.default_rng(config.base.seed),
            hidden=config.gon_hidden,
            n_layers=layers,
        )
        training = TrainingConfig(
            epochs=6, batch_size=16, learning_rate=1e-3, seed=config.base.seed
        )
        train_gon(gon, assets.samples, training)
        carol_config = CAROLConfig(seed=config.base.seed)
        point = _evaluate_point(assets, config, carol_config, model=gon)
        point.parameter = layers
        points.append(point)
    return points


def run_tabu_sweep(
    config: Optional[Fig6Config] = None,
    assets: Optional[TrainedAssets] = None,
    grid: Sequence[int] = TABU_GRID,
) -> List[SweepPoint]:
    """Fig. 6(c): sweep the tabu list size L."""
    config = config or Fig6Config()
    assets = assets or prepare_assets(
        config.base,
        trace_intervals=config.trace_intervals,
        gon_hidden=config.gon_hidden,
        gon_layers=config.gon_layers,
    )
    points = []
    for tabu_size in grid:
        carol_config = CAROLConfig(tabu_size=tabu_size, seed=config.base.seed)
        point = _evaluate_point(assets, config, carol_config)
        point.parameter = tabu_size
        points.append(point)
    return points


def format_sweep(
    title: str, parameter_label: str, points: Sequence[SweepPoint]
) -> str:
    return format_table(
        headers=(
            parameter_label,
            "MSE",
            "decision time (s)",
            "energy (kWh)",
            "SLO violation",
            "model memory (MB)",
        ),
        rows=[p.row() for p in points],
        title=title,
    )
