"""Fleet-mode campaign execution: shared assets + one batched scorer.

The process-pool path runs ``N`` full replicas: every worker pickles
its own copy of the offline assets and executes its own GON inference
stream.  Fleet mode splits the run differently (see
:mod:`repro.serving` for the subsystem diagram):

* the parent publishes each scenario's trained GON weights and trace
  stacks *once* into ``multiprocessing.shared_memory``;
* ``N`` lightweight simulation workers mount zero-copy views of those
  assets and run the discrete-interval loop;
* every CAROL-family surrogate ascent is submitted to the parent's
  :class:`~repro.serving.GONScoringService`, which buckets concurrent
  requests by ``(scenario, host count)`` and answers them with batched
  eq.-1 ascents on the single resident weight replica.

Record-level bit-identity with serial execution holds because (a) the
scored stacks are exactly the stacks an in-process scorer would run
(exact policy -- see :mod:`repro.serving.service` for why merging
cannot be bitwise), (b) workers keep every RNG stream local, and (c) a
run whose POT gate opens fine-tunes a private copy-on-write weight
copy exactly as its serial twin would mutate its own model, then ships
the diverged state back to the service as a per-client overlay
(``pack_state`` roundtrips are bit-exact), so even post-fine-tune
ascents stay in the consolidated stream without leaving the contract.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import AlwaysFineTune, NeverFineTune
from ..core import CAROL, GONDiscriminator, GONInput, ProactiveCAROL
from ..serving import (
    AttachedArrayPack,
    ClientDone,
    FleetScorer,
    GONScoringService,
    ScoringClient,
    ServiceStats,
    SharedArrayPack,
    SharedPackHandle,
)
from .calibration import PROACTIVE_NAME, TrainedAssets, build_model
from .campaign import RunRecord, RunTask, cell_carol_config, run_cell

__all__ = ["run_fleet_campaign"]

#: CAROL-family models whose GON evaluations route through the service.
#: ProactiveCAROL fine-tunes aggressively, so its fleet presence leans
#: on the service's per-client weight overlays to stay consolidated
#: past the first POT-gated fine-tune.
_GON_CAROL_CLASSES = {
    "CAROL": CAROL,
    PROACTIVE_NAME: ProactiveCAROL,
    "CAROL-AlwaysFT": AlwaysFineTune,
    "CAROL-NeverFT": NeverFineTune,
}

#: Seconds to wait for a straggler record/worker before giving up.
_COLLECT_TIMEOUT = 120.0


@dataclass(frozen=True)
class _ScenarioHandles:
    """Picklable pointers to one scenario's published assets."""

    weights: SharedPackHandle
    trace: SharedPackHandle
    gon_hidden: int
    gon_layers: int
    seed: int
    gan_seed: int


def _publish_assets(
    assets: TrainedAssets,
) -> tuple:
    """Publish one scenario's weights + trace into shared memory."""
    weight_pack = SharedArrayPack(assets.gon_state)
    trace_pack = SharedArrayPack({
        "metrics": np.stack([s.metrics for s in assets.samples]),
        "schedules": np.stack([s.schedule for s in assets.samples]),
        "adjacencies": np.stack([s.adjacency for s in assets.samples]),
        "objectives": np.asarray(assets.objectives, dtype=float),
    })
    handles = _ScenarioHandles(
        weights=weight_pack.handle,
        trace=trace_pack.handle,
        gon_hidden=assets.gon_hidden,
        gon_layers=assets.gon_layers,
        seed=assets.seed,
        gan_seed=assets.gan_seed,
    )
    return weight_pack, trace_pack, handles


def _mount_gon(
    state: Dict[str, np.ndarray], hidden: int, layers: int, seed: int
) -> GONDiscriminator:
    """A GON whose parameters are zero-copy views of ``state``."""
    model = GONDiscriminator(
        np.random.default_rng(seed), hidden=hidden, n_layers=layers
    )
    model.load_state_dict(state, copy=False)
    return model


def _attach_assets(handles: _ScenarioHandles) -> tuple:
    """Worker side: rebuild :class:`TrainedAssets` over shared views."""
    weight_pack = AttachedArrayPack(handles.weights)
    trace_pack = AttachedArrayPack(handles.trace)
    arrays = trace_pack.arrays
    n_samples = arrays["metrics"].shape[0]
    assets = TrainedAssets(
        trace=None,
        samples=[
            GONInput(
                arrays["metrics"][i],
                arrays["schedules"][i],
                arrays["adjacencies"][i],
            )
            for i in range(n_samples)
        ],
        objectives=[float(v) for v in arrays["objectives"]],
        gon_state=weight_pack.arrays,
        gon_hidden=handles.gon_hidden,
        gon_layers=handles.gon_layers,
        training_history=None,
        gan_seed=handles.gan_seed,
        seed=handles.seed,
    )
    return assets, (weight_pack, trace_pack)


def _execute_fleet_run(
    task: RunTask,
    assets: Optional[TrainedAssets],
    client: ScoringClient,
) -> RunRecord:
    """One grid cell with service-routed GON scoring.

    Runs through the same :func:`campaign.run_cell` tail as every
    other mode; only the model factory differs -- GON-CAROL models
    mount the shared weight views and a :class:`FleetScorer` instead
    of a private copy of the weights.
    """

    def build(config, _run_seed):
        model_class = _GON_CAROL_CLASSES.get(task.model)
        if model_class is None:
            return build_model(
                task.model, assets, config,
                carol_config=cell_carol_config(task, config),
            )
        if assets is None:
            raise RuntimeError(
                f"fleet run {task.model!r} needs published scenario assets"
            )
        gon = _mount_gon(
            assets.gon_state, assets.gon_hidden, assets.gon_layers,
            assets.seed,
        )
        return model_class(
            gon,
            config.alpha,
            config.beta,
            cell_carol_config(task, config),
            scorer=FleetScorer(client, gon),
        )

    return run_cell(task, build)


def _fleet_worker_main(
    worker_id: int,
    tasks: Sequence[RunTask],
    handles: Dict[str, _ScenarioHandles],
    request_queue,
    reply_queue,
    results_queue,
) -> None:
    """Worker process: mount shared assets, run cells, stream records."""
    opened: List[AttachedArrayPack] = []
    try:
        assets_by_scenario: Dict[str, TrainedAssets] = {}
        for scenario, scenario_handles in handles.items():
            assets, packs = _attach_assets(scenario_handles)
            assets_by_scenario[scenario] = assets
            opened.extend(packs)
        for task in tasks:
            client = ScoringClient(
                worker_id, task.scenario, request_queue, reply_queue
            )
            record = _execute_fleet_run(
                task, assets_by_scenario.get(task.scenario), client
            )
            results_queue.put(record)
    finally:
        # Sign off even on failure so the scorer loop can wind down
        # (the parent notices missing records and the exit code).
        request_queue.put(ClientDone(worker_id))
        for pack in opened:
            pack.close()


def run_fleet_campaign(
    config,
    tasks: Sequence[RunTask],
    shared_assets: Dict[str, TrainedAssets],
    stats_sink: Optional[List[ServiceStats]] = None,
) -> List[RunRecord]:
    """Execute ``tasks`` with fleet workers against one scoring service.

    ``shared_assets`` maps scenario name -> offline assets (from
    :func:`~repro.experiments.campaign.prepare_campaign_assets`).
    ``stats_sink``, when given, receives the scorer's
    :class:`ServiceStats` for telemetry/benchmarks.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    ctx = multiprocessing.get_context()
    n_workers = max(1, min(config.workers, len(tasks)))
    partitions = [tasks[i::n_workers] for i in range(n_workers)]

    packs: List[SharedArrayPack] = []
    handles: Dict[str, _ScenarioHandles] = {}
    models: Dict[str, GONDiscriminator] = {}
    workers: List = []
    try:
        for scenario, assets in shared_assets.items():
            weight_pack, trace_pack, scenario_handles = _publish_assets(assets)
            packs.extend((weight_pack, trace_pack))
            handles[scenario] = scenario_handles
            # The service replica reads the same shared segment: the
            # weights exist once on the machine, scorer included.
            models[scenario] = _mount_gon(
                weight_pack.arrays, assets.gon_hidden, assets.gon_layers,
                assets.seed,
            )

        request_queue = ctx.Queue()
        reply_queues = {i: ctx.Queue() for i in range(n_workers)}
        results_queue = ctx.Queue()
        workers.extend(
            ctx.Process(
                target=_fleet_worker_main,
                args=(
                    i, partitions[i], handles,
                    request_queue, reply_queues[i], results_queue,
                ),
                daemon=True,
            )
            for i in range(n_workers)
        )
        for worker in workers:
            worker.start()

        def worker_crashed() -> bool:
            return any(
                not worker.is_alive() and worker.exitcode not in (0, None)
                for worker in workers
            )

        service = GONScoringService(
            models,
            request_queue,
            reply_queues,
            merge_requests=bool(getattr(config, "fleet_merge", False)),
        )
        stats = service.serve(abort=worker_crashed)
        if stats_sink is not None:
            stats_sink.append(stats)

        records: List[RunRecord] = []
        deadline = time.monotonic() + _COLLECT_TIMEOUT
        while len(records) < len(tasks):
            try:
                records.append(results_queue.get(timeout=1.0))
            except queue_module.Empty:
                # Nothing in flight: a crashed worker can never refill
                # the queue, so fail fast instead of waiting out the
                # full timeout (kept as a backstop for silent hangs).
                if worker_crashed() or time.monotonic() > deadline:
                    raise RuntimeError(
                        f"fleet campaign lost records: got {len(records)} "
                        f"of {len(tasks)} (a worker likely crashed -- "
                        "check stderr above)"
                    ) from None
        for worker in workers:
            worker.join(timeout=_COLLECT_TIMEOUT)
        return sorted(records, key=lambda record: record.run_index)
    finally:
        # On failure paths (worker crash, lost records) the survivors
        # are still blocked on their reply queues: tear them down so a
        # long-lived host process never accumulates stuck children.
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        for pack in packs:
            pack.close()
            pack.unlink()
