"""Fleet-mode campaign execution: shared assets + one batched scorer.

The process-pool path runs ``N`` full replicas: every worker pickles
its own copy of the offline assets and executes its own GON inference
stream.  Fleet mode splits the run differently (see
:mod:`repro.serving` for the subsystem diagram):

* the parent publishes each scenario's trained GON weights and trace
  stacks *once*;
* ``N`` lightweight simulation workers mount read-only views of those
  assets and run the discrete-interval loop;
* every CAROL-family surrogate ascent is submitted to the
  :class:`~repro.serving.GONScoringService`, which buckets concurrent
  requests by ``(scenario, host count)`` and answers them with batched
  eq.-1 ascents on the single resident weight replica.

Two transports carry that traffic (``CampaignConfig.transport``):

* ``"queue"`` -- ``multiprocessing`` queues and shared-memory asset
  segments; the fleet lives on one machine (the historical path,
  preserved bit-for-bit behind :class:`~repro.serving.QueueTransport`);
* ``"tcp"`` -- length-prefixed binary frames over sockets
  (:mod:`repro.serving.wire`); workers fetch assets over the socket
  and may live on other machines.  With ``CampaignConfig.service_addr``
  set, workers connect to an externally hosted service
  (``python -m repro serve``) instead of one spawned here.

Record-level bit-identity with serial execution holds on both
transports because (a) the scored stacks are exactly the stacks an
in-process scorer would run (exact policy -- see
:mod:`repro.serving.service` for why merging cannot be bitwise), (b)
workers keep every RNG stream local, (c) a run whose POT gate opens
fine-tunes a private copy-on-write weight copy exactly as its serial
twin would, then ships the diverged state back as a per-client overlay
(``pack_state`` roundtrips are bit-exact), and (d) the TCP wire moves
float64 payloads as raw packed bytes, never through text.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..baselines import AlwaysFineTune, NeverFineTune
from ..core import CAROL, GONDiscriminator, GONInput, ProactiveCAROL
from ..nn.serialization import pack_state, unpack_state
from ..serving import (
    AttachedArrayPack,
    ClientDone,
    FleetScorer,
    GONScoringService,
    QueueTransport,
    ScoringClient,
    ServiceStats,
    SharedArrayPack,
    SharedPackHandle,
    StatsUpdate,
    StatusServer,
    TcpTransport,
    TcpWorkerChannel,
    fetch_array_pack,
    serve_transport,
)
from ..telemetry import merge_snapshots
from .calibration import PROACTIVE_NAME, TrainedAssets, build_model
from .campaign import (
    RunRecord,
    RunTask,
    _CAROL_FAMILY,
    cell_carol_config,
    run_cell,
)

__all__ = ["run_fleet_campaign", "serve_fleet_service"]

#: CAROL-family models whose GON evaluations route through the service.
#: ProactiveCAROL fine-tunes aggressively, so its fleet presence leans
#: on the service's per-client weight overlays to stay consolidated
#: past the first POT-gated fine-tune.
_GON_CAROL_CLASSES = {
    "CAROL": CAROL,
    PROACTIVE_NAME: ProactiveCAROL,
    "CAROL-AlwaysFT": AlwaysFineTune,
    "CAROL-NeverFT": NeverFineTune,
}

#: Seconds to wait for a straggler record/worker before giving up.
_COLLECT_TIMEOUT = 120.0


@dataclass(frozen=True)
class _WorkerTelemetry:
    """A worker's final registry delta, shipped on the results queue.

    Separate from the per-cell :class:`~repro.serving.StatsUpdate`
    frames (which feed the service's live ``/status`` view): this one
    travels to the *parent* so the campaign's merged telemetry is
    complete even when the scoring service is remote.
    """

    worker_id: int
    snapshot: Dict[str, dict]


@dataclass(frozen=True)
class _ScenarioHandles:
    """Picklable pointers to one scenario's published assets."""

    weights: SharedPackHandle
    trace: SharedPackHandle
    gon_hidden: int
    gon_layers: int
    seed: int
    gan_seed: int


def _trace_arrays(assets: TrainedAssets) -> Dict[str, np.ndarray]:
    """The offline trace as stacked arrays (the published layout)."""
    return {
        "metrics": np.stack([s.metrics for s in assets.samples]),
        "schedules": np.stack([s.schedule for s in assets.samples]),
        "adjacencies": np.stack([s.adjacency for s in assets.samples]),
        "objectives": np.asarray(assets.objectives, dtype=float),
    }


def _publish_assets(
    assets: TrainedAssets,
) -> tuple:
    """Publish one scenario's weights + trace into shared memory."""
    weight_pack = SharedArrayPack(assets.gon_state)
    trace_pack = SharedArrayPack(_trace_arrays(assets))
    handles = _ScenarioHandles(
        weights=weight_pack.handle,
        trace=trace_pack.handle,
        gon_hidden=assets.gon_hidden,
        gon_layers=assets.gon_layers,
        seed=assets.seed,
        gan_seed=assets.gan_seed,
    )
    return weight_pack, trace_pack, handles


def _mount_gon(
    state: Dict[str, np.ndarray], hidden: int, layers: int, seed: int
) -> GONDiscriminator:
    """A GON whose parameters are zero-copy views of ``state``."""
    model = GONDiscriminator(
        np.random.default_rng(seed), hidden=hidden, n_layers=layers
    )
    model.load_state_dict(state, copy=False)
    return model


def _rebuild_assets(
    weight_arrays: Dict[str, np.ndarray],
    trace_arrays: Dict[str, np.ndarray],
    gon_hidden: int,
    gon_layers: int,
    seed: int,
    gan_seed: int,
) -> TrainedAssets:
    """Worker side: :class:`TrainedAssets` over published array views."""
    n_samples = trace_arrays["metrics"].shape[0]
    return TrainedAssets(
        trace=None,
        samples=[
            GONInput(
                trace_arrays["metrics"][i],
                trace_arrays["schedules"][i],
                trace_arrays["adjacencies"][i],
            )
            for i in range(n_samples)
        ],
        objectives=[float(v) for v in trace_arrays["objectives"]],
        gon_state=weight_arrays,
        gon_hidden=gon_hidden,
        gon_layers=gon_layers,
        training_history=None,
        gan_seed=gan_seed,
        seed=seed,
    )


def _attach_assets(handles: _ScenarioHandles) -> tuple:
    """Worker side: rebuild :class:`TrainedAssets` over shared views."""
    weight_pack = AttachedArrayPack(handles.weights)
    trace_pack = AttachedArrayPack(handles.trace)
    assets = _rebuild_assets(
        weight_pack.arrays,
        trace_pack.arrays,
        handles.gon_hidden,
        handles.gon_layers,
        handles.seed,
        handles.gan_seed,
    )
    return assets, (weight_pack, trace_pack)


def _execute_fleet_run(
    task: RunTask,
    assets: Optional[TrainedAssets],
    client: ScoringClient,
) -> RunRecord:
    """One grid cell with service-routed GON scoring.

    Runs through the same :func:`campaign.run_cell` tail as every
    other mode; only the model factory differs -- GON-CAROL models
    mount the shared weight views and a :class:`FleetScorer` instead
    of a private copy of the weights.
    """

    def build(config, _run_seed):
        model_class = _GON_CAROL_CLASSES.get(task.model)
        if model_class is None:
            return build_model(
                task.model, assets, config,
                carol_config=cell_carol_config(task, config),
                scorer_backend=task.scorer_backend,
            )
        if assets is None:
            raise RuntimeError(
                f"fleet run {task.model!r} needs published scenario assets"
            )
        gon = _mount_gon(
            assets.gon_state, assets.gon_hidden, assets.gon_layers,
            assets.seed,
        )
        return model_class(
            gon,
            config.alpha,
            config.beta,
            cell_carol_config(task, config),
            scorer=FleetScorer(client, gon, backend=task.scorer_backend),
        )

    return run_cell(task, build)


def _fleet_worker_main(
    worker_id: int,
    tasks: Sequence[RunTask],
    handles: Dict[str, _ScenarioHandles],
    request_queue,
    reply_queue,
    results_queue,
) -> None:
    """Worker process: mount shared assets, run cells, stream records."""
    opened: List[AttachedArrayPack] = []
    # Everything below is reported relative to this base so the
    # fork-inherited parent registry state never double-counts.
    base = _telemetry.snapshot()
    try:
        assets_by_scenario: Dict[str, TrainedAssets] = {}
        for scenario, scenario_handles in handles.items():
            assets, packs = _attach_assets(scenario_handles)
            assets_by_scenario[scenario] = assets
            opened.extend(packs)
        for task in tasks:
            client = ScoringClient(
                worker_id, task.scenario, request_queue, reply_queue
            )
            record = _execute_fleet_run(
                task, assets_by_scenario.get(task.scenario), client
            )
            results_queue.put(record)
            # Cumulative-so-far snapshot for the service's live
            # /status view (latest per client replaces earlier ones).
            request_queue.put(
                StatsUpdate(worker_id, _telemetry.delta(base))
            )
        results_queue.put(_WorkerTelemetry(worker_id, _telemetry.delta(base)))
    finally:
        # Sign off even on failure so the scorer loop can wind down
        # (the parent notices missing records and the exit code).
        request_queue.put(ClientDone(worker_id))
        for pack in opened:
            pack.close()


def _tcp_fleet_worker_main(
    worker_id: int,
    tasks: Sequence[RunTask],
    address: str,
    results_queue,
) -> None:
    """TCP worker: connect, fetch assets over the socket, run cells.

    Mirrors :func:`_fleet_worker_main` with the network asset path:
    each needed scenario's weight and trace packs are fetched once
    (cached per process by :func:`repro.serving.fetch_array_pack`)
    instead of attaching ``multiprocessing.shared_memory``.  The
    client id is assigned by the service at handshake; ``worker_id``
    only names the task partition.
    """
    channel = TcpWorkerChannel(address)
    base = _telemetry.snapshot()
    try:
        index = channel.fetch_index()
        assets_by_scenario: Dict[str, TrainedAssets] = {}
        needed = sorted(
            {task.scenario for task in tasks if task.model in _CAROL_FAMILY}
        )
        for scenario in needed:
            meta = index.get(scenario)
            if meta is None:
                continue
            weights = fetch_array_pack(channel, f"{scenario}/weights")
            trace = fetch_array_pack(channel, f"{scenario}/trace")
            assets_by_scenario[scenario] = _rebuild_assets(
                weights.arrays,
                trace.arrays,
                int(meta["gon_hidden"]),
                int(meta["gon_layers"]),
                int(meta["seed"]),
                int(meta["gan_seed"]),
            )
        for task in tasks:
            client = ScoringClient(
                channel.client_id, task.scenario, channel, channel
            )
            record = _execute_fleet_run(
                task, assets_by_scenario.get(task.scenario), client
            )
            results_queue.put(record)
            channel.put(StatsUpdate(channel.client_id, _telemetry.delta(base)))
        results_queue.put(
            _WorkerTelemetry(worker_id, _telemetry.delta(base))
        )
    finally:
        try:
            channel.put(ClientDone(channel.client_id))
        except Exception:
            pass  # the socket is already gone; the service saw the EOF
        channel.close()


def _pack_campaign_assets(
    shared_assets: Dict[str, TrainedAssets],
) -> Tuple[Dict[str, tuple], Dict[str, Dict[str, int]], Dict[str, GONDiscriminator]]:
    """Pack every scenario's assets for TCP publication.

    Returns ``(asset_packs, asset_index, models)``: the named
    ``(buffer, manifest)`` packs the transport serves to remote
    workers, the scenario metadata index, and the service-side GON
    replicas mounted as zero-copy views over the very same buffers --
    the weights exist once in the serving process.
    """
    packs: Dict[str, tuple] = {}
    index: Dict[str, Dict[str, int]] = {}
    models: Dict[str, GONDiscriminator] = {}
    for scenario, assets in shared_assets.items():
        weight_buffer, weight_manifest = pack_state(assets.gon_state)
        packs[f"{scenario}/weights"] = (weight_buffer, weight_manifest)
        packs[f"{scenario}/trace"] = pack_state(_trace_arrays(assets))
        index[scenario] = {
            "gon_hidden": assets.gon_hidden,
            "gon_layers": assets.gon_layers,
            "seed": assets.seed,
            "gan_seed": assets.gan_seed,
        }
        models[scenario] = _mount_gon(
            unpack_state(weight_buffer, weight_manifest),
            assets.gon_hidden,
            assets.gon_layers,
            assets.seed,
        )
    return packs, index, models


def _collect_records(
    results_queue,
    n_expected: int,
    n_workers: int,
    worker_crashed: Callable[[], bool],
    workers_alive: Callable[[], bool],
) -> Tuple[List[RunRecord], List[dict]]:
    """Drain worker records; fail fast when a worker can't deliver.

    Liveness, not a wall-clock budget, decides when to give up: as
    long as workers are alive and healthy we keep waiting (remote-mode
    collection starts while cells are still executing, and a single
    long cell must not trip an arbitrary deadline -- process-pool
    campaigns wait indefinitely too).  A crashed worker fails fast; a
    clean universal exit with records still missing gets one short
    drain grace period, then fails loudly.

    Besides the ``n_expected`` records, every worker ships one final
    :class:`_WorkerTelemetry` after its last record -- collection waits
    for all ``n_workers`` of those too (same loud failure paths), and
    returns ``(records, telemetry_snapshots)``.
    """
    records: List[RunRecord] = []
    snapshots: List[dict] = []

    def missing() -> bool:
        return len(records) < n_expected or len(snapshots) < n_workers

    def take(item) -> None:
        if isinstance(item, _WorkerTelemetry):
            snapshots.append(item.snapshot)
        else:
            records.append(item)

    while missing():
        try:
            take(results_queue.get(timeout=1.0))
            continue
        except queue_module.Empty:
            pass
        if worker_crashed():
            raise RuntimeError(
                f"fleet campaign lost records: got {len(records)} "
                f"of {n_expected} (a worker crashed -- check stderr "
                "above)"
            ) from None
        if not workers_alive():
            # Every worker exited cleanly: whatever is coming is
            # already in the queue's pipe buffer.
            try:
                take(results_queue.get(timeout=5.0))
                continue
            except queue_module.Empty:
                raise RuntimeError(
                    f"fleet campaign lost records: got {len(records)} of "
                    f"{n_expected} and {len(snapshots)} of {n_workers} "
                    "telemetry snapshots although every worker exited "
                    "cleanly -- results were dropped in transit"
                ) from None
    return records, snapshots


def run_fleet_campaign(
    config,
    tasks: Sequence[RunTask],
    shared_assets: Dict[str, TrainedAssets],
    stats_sink: Optional[List[ServiceStats]] = None,
    telemetry_sink: Optional[List[dict]] = None,
) -> List[RunRecord]:
    """Execute ``tasks`` with fleet workers against one scoring service.

    ``shared_assets`` maps scenario name -> offline assets (from
    :func:`~repro.experiments.campaign.prepare_campaign_assets`).
    ``stats_sink``, when given, receives the scorer's
    :class:`ServiceStats` for telemetry/benchmarks (empty when the
    service is remote -- its stats live in the serving process).
    ``telemetry_sink``, when given, receives one merged registry
    snapshot covering the parent (service included when self-hosted)
    and every worker's final delta.  ``config.transport`` selects
    queue or TCP plumbing.
    """
    tasks = list(tasks)
    if not tasks:
        if telemetry_sink is not None:
            telemetry_sink.append(merge_snapshots())
        return []
    if getattr(config, "transport", "queue") == "tcp":
        return _run_tcp_fleet_campaign(
            config, tasks, shared_assets, stats_sink, telemetry_sink
        )
    base = _telemetry.snapshot()
    ctx = multiprocessing.get_context()
    n_workers = max(1, min(config.workers, len(tasks)))
    partitions = [tasks[i::n_workers] for i in range(n_workers)]

    packs: List[SharedArrayPack] = []
    handles: Dict[str, _ScenarioHandles] = {}
    models: Dict[str, GONDiscriminator] = {}
    workers: List = []
    try:
        for scenario, assets in shared_assets.items():
            weight_pack, trace_pack, scenario_handles = _publish_assets(assets)
            packs.extend((weight_pack, trace_pack))
            handles[scenario] = scenario_handles
            # The service replica reads the same shared segment: the
            # weights exist once on the machine, scorer included.
            models[scenario] = _mount_gon(
                weight_pack.arrays, assets.gon_hidden, assets.gon_layers,
                assets.seed,
            )

        transport = QueueTransport(n_workers, ctx=ctx)
        results_queue = ctx.Queue()
        workers.extend(
            ctx.Process(
                target=_fleet_worker_main,
                args=(
                    i, partitions[i], handles,
                    *transport.worker_endpoints(i), results_queue,
                ),
                daemon=True,
            )
            for i in range(n_workers)
        )
        for worker in workers:
            worker.start()

        def worker_crashed() -> bool:
            return any(
                not worker.is_alive() and worker.exitcode not in (0, None)
                for worker in workers
            )

        def workers_alive() -> bool:
            return any(worker.is_alive() for worker in workers)

        service = GONScoringService(
            models,
            transport.request_queue,
            transport.reply_queues,
            merge_requests=bool(getattr(config, "fleet_merge", False)),
            scorer_backend=getattr(config, "scorer_backend", "exact"),
        )
        stats = serve_transport(service, transport, abort=worker_crashed)
        if stats_sink is not None:
            stats_sink.append(stats)

        records, worker_snapshots = _collect_records(
            results_queue, len(tasks), n_workers, worker_crashed,
            workers_alive,
        )
        if telemetry_sink is not None:
            # The parent delta carries the service-side registry
            # (service.*, gon.* from batched ascents); each worker
            # delta carries its sim/campaign/carol side.
            telemetry_sink.append(
                merge_snapshots(_telemetry.delta(base), *worker_snapshots)
            )
        for worker in workers:
            worker.join(timeout=_COLLECT_TIMEOUT)
        return sorted(records, key=lambda record: record.run_index)
    finally:
        # On failure paths (worker crash, lost records) the survivors
        # are still blocked on their reply queues: tear them down so a
        # long-lived host process never accumulates stuck children.
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        for pack in packs:
            pack.close()
            pack.unlink()


def _run_tcp_fleet_campaign(
    config,
    tasks: Sequence[RunTask],
    shared_assets: Dict[str, TrainedAssets],
    stats_sink: Optional[List[ServiceStats]] = None,
    telemetry_sink: Optional[List[dict]] = None,
) -> List[RunRecord]:
    """Fleet execution over sockets: self-hosted or external service.

    Without ``config.service_addr`` the parent binds an ephemeral
    localhost port, serves the scoring loop itself and spawns local
    workers that connect to it (the single-box TCP mode CI smokes).
    With ``service_addr`` the workers connect to an externally hosted
    service (``python -m repro serve``) and fetch assets from it --
    this process never trains or publishes anything.
    """
    base = _telemetry.snapshot()
    ctx = multiprocessing.get_context()
    n_workers = max(1, min(config.workers, len(tasks)))
    partitions = [tasks[i::n_workers] for i in range(n_workers)]
    service_addr = str(getattr(config, "service_addr", "") or "")
    if service_addr and n_workers != config.workers:
        # The external service winds down after exactly
        # --expect-workers sign-offs; a silently clamped worker count
        # would leave it waiting for clients that never come.
        print(
            f"note: fleet worker count clamped to {n_workers} (the grid "
            f"has only {len(tasks)} tasks); the service at "
            f"{service_addr} must have been started with "
            f"--expect-workers {n_workers}",
            file=sys.stderr,
        )

    transport: Optional[TcpTransport] = None
    workers: List = []
    try:
        if service_addr:
            address = service_addr
            models: Dict[str, GONDiscriminator] = {}
        else:
            asset_packs, asset_index, models = _pack_campaign_assets(shared_assets)
            transport = TcpTransport(
                n_workers, asset_packs=asset_packs, asset_index=asset_index
            )
            transport.start()
            address = transport.address

        results_queue = ctx.Queue()
        workers.extend(
            ctx.Process(
                target=_tcp_fleet_worker_main,
                args=(i, partitions[i], address, results_queue),
                daemon=True,
            )
            for i in range(n_workers)
        )
        for worker in workers:
            worker.start()

        def worker_crashed() -> bool:
            return any(
                not worker.is_alive() and worker.exitcode not in (0, None)
                for worker in workers
            )

        def workers_alive() -> bool:
            return any(worker.is_alive() for worker in workers)

        if transport is not None:
            service = GONScoringService(
                models,
                transport.request_queue,
                transport.reply_queues,
                merge_requests=bool(getattr(config, "fleet_merge", False)),
                scorer_backend=getattr(config, "scorer_backend", "exact"),
            )
            stats = serve_transport(service, transport, abort=worker_crashed)
            if stats_sink is not None:
                stats_sink.append(stats)

        records, worker_snapshots = _collect_records(
            results_queue, len(tasks), n_workers, worker_crashed,
            workers_alive,
        )
        if telemetry_sink is not None:
            telemetry_sink.append(
                merge_snapshots(_telemetry.delta(base), *worker_snapshots)
            )
        for worker in workers:
            worker.join(timeout=_COLLECT_TIMEOUT)
        return sorted(records, key=lambda record: record.run_index)
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        if transport is not None:
            transport.close()


def _status_provider(
    service: GONScoringService, transport: TcpTransport, n_clients: int
) -> Callable[[], dict]:
    """Build the ``/status`` JSON assembler for a hosted service.

    Pure observation: merges the service-process registry with the
    latest STATS frame from every worker, derives the cell progress
    view from the merged ``campaign.cells_*`` counters, and reports
    connection/sign-off state.  Safe to call from the status server's
    threads mid-``serve()``.
    """

    def provider() -> dict:
        merged = service.merged_telemetry()
        counters = merged.get("counters", {})
        started = int(counters.get("campaign.cells_started", 0))
        completed = int(counters.get("campaign.cells_completed", 0))
        return {
            "workers": {
                "connected": transport.n_connected,
                "expected": n_clients,
                "signed_off": len(service.signed_off),
            },
            "cells": {
                "started": started,
                "completed": completed,
                "in_flight": max(0, started - completed),
            },
            "service": asdict(service.stats),
            "telemetry": merged,
        }

    return provider


def serve_fleet_service(
    config,
    shared_assets: Dict[str, TrainedAssets],
    host: str = "127.0.0.1",
    port: int = 0,
    n_clients: int = 2,
    idle_timeout: float = 0.0,
    on_ready: Optional[Callable[[str, int], None]] = None,
    status_port: Optional[int] = None,
    status_host: str = "127.0.0.1",
    telemetry_sink: Optional[List[dict]] = None,
) -> ServiceStats:
    """Host one scoring service for remote campaign workers.

    The backbone of ``python -m repro serve``: publishes
    ``shared_assets`` on a :class:`TcpTransport`, calls ``on_ready``
    with the bound ``(host, port)``, then scores until ``n_clients``
    workers have signed off.  ``idle_timeout > 0`` aborts loudly when
    no frame has arrived for that many seconds (covers workers that
    never connect as well as ones that silently die).

    ``status_port`` (0 = ephemeral) additionally binds a read-only
    HTTP :class:`~repro.serving.StatusServer` next to the scoring
    socket serving ``/status`` and ``/metrics`` from the live merged
    telemetry; ``None`` (the default) serves no HTTP.
    ``telemetry_sink``, when given, receives the final merged snapshot
    after the scoring loop winds down.
    """
    from ..serving.transports import TransportError

    asset_packs, asset_index, models = _pack_campaign_assets(shared_assets)
    transport = TcpTransport(
        n_clients,
        host=host,
        port=port,
        asset_packs=asset_packs,
        asset_index=asset_index,
    )
    transport.start()
    status_server: Optional[StatusServer] = None
    try:
        service = GONScoringService(
            models,
            transport.request_queue,
            transport.reply_queues,
            merge_requests=bool(getattr(config, "fleet_merge", False)),
            scorer_backend=getattr(config, "scorer_backend", "exact"),
        )
        if status_port is not None:
            status_server = StatusServer(
                _status_provider(service, transport, n_clients),
                host=status_host,
                port=status_port,
            ).start()
            print(
                f"status endpoint on http://{status_server.address}/status",
                file=sys.stderr,
            )
        if on_ready is not None:
            on_ready(transport.host, transport.port)

        abort = None
        if idle_timeout > 0:

            def abort() -> bool:
                idle = time.monotonic() - transport.last_activity
                if idle > idle_timeout:
                    raise TransportError(
                        f"scoring service idle for {idle:.0f}s "
                        f"({transport.n_connected} of {n_clients} workers "
                        "connected); shutting down"
                    )
                return False

        stats = serve_transport(service, transport, abort=abort)
        if telemetry_sink is not None:
            telemetry_sink.append(service.merged_telemetry())
        return stats
    finally:
        if status_server is not None:
            status_server.close()
        transport.close()
