"""Fleet-mode campaign execution: an elastic, lease-based work queue.

The process-pool path runs ``N`` full replicas: every worker pickles
its own copy of the offline assets and executes its own GON inference
stream.  Fleet mode splits the run differently (see
:mod:`repro.serving` for the subsystem diagram):

* the parent publishes each scenario's trained GON weights and trace
  stacks *once*;
* ``N`` lightweight simulation workers mount read-only views of those
  assets and run the discrete-interval loop;
* every CAROL-family surrogate ascent is submitted to the
  :class:`~repro.serving.GONScoringService`, which buckets concurrent
  requests by ``(scenario, host count)`` and answers them with batched
  eq.-1 ascents on the single resident weight replica.

Cells are no longer pre-sharded across workers.  The coordinator side
holds the whole ``(scenario, model, seed)`` grid as a lease-based
queue (:class:`~repro.serving.CellCoordinator`); every worker pulls
one cell at a time (``LeaseRequest`` -> ``LeaseGrant``), runs it,
ships the record, acknowledges with ``CellDone`` and pulls the next.
Because :func:`campaign.run_cell` derives every RNG stream from the
cell's own ``SeedSequence.spawn`` child, *which worker* runs a cell --
or how often it is retried after a worker dies -- never changes the
record.  That independence is what makes work stealing, crash
re-queue and duplicate suppression safe:

* a worker that dies mid-cell (socket EOF, missed heartbeats, or a
  dead process noticed by the queue-mode watchdog) has its leases
  revoked and re-queued for the survivors;
* a cell that keeps killing workers exhausts its bounded retry budget
  and is quarantined as *poisoned* -- reported, not retried forever;
* late workers may join a running TCP campaign (handshake assigns ids
  in accept order) and immediately start pulling queued cells;
* duplicate records from zombie workers (a cell revoked and re-run
  elsewhere) are deduplicated first-wins on collection.

Two transports carry the traffic (``CampaignConfig.transport``):

* ``"queue"`` -- ``multiprocessing`` queues and shared-memory asset
  segments; the fleet lives on one machine (the historical path,
  preserved bit-for-bit behind :class:`~repro.serving.QueueTransport`);
* ``"tcp"`` -- length-prefixed binary frames over sockets
  (:mod:`repro.serving.wire`); workers fetch assets over the socket
  and may live on other machines.  With ``CampaignConfig.service_addr``
  set, workers connect to an externally hosted service
  (``python -m repro serve``) instead of one spawned here.

Record-level bit-identity with serial execution holds on both
transports because (a) the scored stacks are exactly the stacks an
in-process scorer would run (exact policy -- see
:mod:`repro.serving.service` for why merging cannot be bitwise), (b)
workers keep every RNG stream local, (c) a run whose POT gate opens
fine-tunes a private copy-on-write weight copy exactly as its serial
twin would, then ships the diverged state back as a per-client overlay
(``pack_state`` roundtrips are bit-exact), and (d) the TCP wire moves
float64 payloads as raw packed bytes, never through text.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import sys
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field
from itertools import count as _count
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..baselines import AlwaysFineTune, NeverFineTune
from ..core import CAROL, GONDiscriminator, GONInput, ProactiveCAROL
from ..nn.serialization import pack_state, unpack_state
from ..serving import (
    AttachedArrayPack,
    ClientDone,
    FleetScorer,
    GONScoringService,
    QueueTransport,
    ScoringClient,
    ServiceStats,
    SharedArrayPack,
    SharedPackHandle,
    StatsUpdate,
    StatusServer,
    TcpTransport,
    TcpWorkerChannel,
    fetch_array_pack,
    serve_transport,
)
from ..serving.chaos import ChaosControl
from ..serving.coordinator import CellCoordinator
from ..serving.service import CellDone, LeaseGrant, LeaseRequest, Ping, WorkerLost
from ..telemetry import merge_snapshots
from .calibration import PROACTIVE_NAME, TrainedAssets, build_model
from .campaign import (
    RunRecord,
    RunTask,
    _CAROL_FAMILY,
    campaign_config_hash,
    campaign_grid_identity,
    cell_carol_config,
    plan_tasks,
    run_cell,
)

__all__ = ["run_fleet_campaign", "serve_fleet_service", "FleetChaosHandle"]

#: CAROL-family models whose GON evaluations route through the service.
#: ProactiveCAROL fine-tunes aggressively, so its fleet presence leans
#: on the service's per-client weight overlays to stay consolidated
#: past the first POT-gated fine-tune.
_GON_CAROL_CLASSES = {
    "CAROL": CAROL,
    PROACTIVE_NAME: ProactiveCAROL,
    "CAROL-AlwaysFT": AlwaysFineTune,
    "CAROL-NeverFT": NeverFineTune,
}

#: Seconds to wait for a straggler record/worker before giving up.
_COLLECT_TIMEOUT = 120.0

#: Worker-side backoff between lease polls when the queue is empty but
#: not drained (cells still leased elsewhere might come back).
_LEASE_POLL_SECONDS = 0.1

#: Seconds of post-mortem queue drain once every worker has exited.
_DRAIN_GRACE_SECONDS = 10.0

#: Records arriving for a cell that already delivered (zombie workers
#: finishing a revoked lease) -- deduplicated first-wins on collection.
_DUPLICATE_RECORDS = _telemetry.counter("fleet.duplicate_records")


@dataclass(frozen=True)
class _WorkerDone:
    """A worker's final frame on the results queue.

    Carries the registry delta for the campaign's merged telemetry
    (separate from the per-cell :class:`~repro.serving.StatsUpdate`
    frames, which feed the service's live ``/status`` view and never
    reach a remote campaign parent) plus the poisoned-cell ids the
    drained :class:`~repro.serving.LeaseGrant` reported, so even a
    parent without local coordinator access (``service_addr`` mode)
    learns which cells were quarantined.
    """

    worker_id: int
    snapshot: Dict[str, dict]
    poisoned: Tuple[int, ...] = ()


@dataclass(frozen=True)
class _ScenarioHandles:
    """Picklable pointers to one scenario's published assets."""

    weights: SharedPackHandle
    trace: SharedPackHandle
    gon_hidden: int
    gon_layers: int
    seed: int
    gan_seed: int


@dataclass
class FleetChaosHandle:
    """Live fleet internals handed to a ``chaos=`` hook.

    ``run_fleet_campaign(..., chaos=fn)`` runs ``fn(handle)`` on a
    daemon thread once the workers have started -- the failure-matrix
    tests use it to SIGKILL workers mid-cell, revoke leases, or spawn
    late joiners against a *real* running campaign.  ``coordinator``,
    ``service`` and ``transport`` are ``None`` when the scoring
    service is remote; ``spawn_worker`` is only available on the TCP
    paths (queue transports have a fixed reply-queue roster).
    """

    workers: List = field(default_factory=list)
    coordinator: Optional[CellCoordinator] = None
    service: Optional[GONScoringService] = None
    transport: Optional[object] = None
    address: Optional[str] = None
    spawn_worker: Optional[Callable[[], object]] = None


def _trace_arrays(assets: TrainedAssets) -> Dict[str, np.ndarray]:
    """The offline trace as stacked arrays (the published layout)."""
    return {
        "metrics": np.stack([s.metrics for s in assets.samples]),
        "schedules": np.stack([s.schedule for s in assets.samples]),
        "adjacencies": np.stack([s.adjacency for s in assets.samples]),
        "objectives": np.asarray(assets.objectives, dtype=float),
    }


def _publish_assets(
    assets: TrainedAssets,
) -> tuple:
    """Publish one scenario's weights + trace into shared memory."""
    weight_pack = SharedArrayPack(assets.gon_state)
    trace_pack = SharedArrayPack(_trace_arrays(assets))
    handles = _ScenarioHandles(
        weights=weight_pack.handle,
        trace=trace_pack.handle,
        gon_hidden=assets.gon_hidden,
        gon_layers=assets.gon_layers,
        seed=assets.seed,
        gan_seed=assets.gan_seed,
    )
    return weight_pack, trace_pack, handles


def _mount_gon(
    state: Dict[str, np.ndarray], hidden: int, layers: int, seed: int
) -> GONDiscriminator:
    """A GON whose parameters are zero-copy views of ``state``."""
    model = GONDiscriminator(
        np.random.default_rng(seed), hidden=hidden, n_layers=layers
    )
    model.load_state_dict(state, copy=False)
    return model


def _rebuild_assets(
    weight_arrays: Dict[str, np.ndarray],
    trace_arrays: Dict[str, np.ndarray],
    gon_hidden: int,
    gon_layers: int,
    seed: int,
    gan_seed: int,
) -> TrainedAssets:
    """Worker side: :class:`TrainedAssets` over published array views."""
    n_samples = trace_arrays["metrics"].shape[0]
    return TrainedAssets(
        trace=None,
        samples=[
            GONInput(
                trace_arrays["metrics"][i],
                trace_arrays["schedules"][i],
                trace_arrays["adjacencies"][i],
            )
            for i in range(n_samples)
        ],
        objectives=[float(v) for v in trace_arrays["objectives"]],
        gon_state=weight_arrays,
        gon_hidden=gon_hidden,
        gon_layers=gon_layers,
        training_history=None,
        gan_seed=gan_seed,
        seed=seed,
    )


def _attach_assets(handles: _ScenarioHandles) -> tuple:
    """Worker side: rebuild :class:`TrainedAssets` over shared views."""
    weight_pack = AttachedArrayPack(handles.weights)
    trace_pack = AttachedArrayPack(handles.trace)
    assets = _rebuild_assets(
        weight_pack.arrays,
        trace_pack.arrays,
        handles.gon_hidden,
        handles.gon_layers,
        handles.seed,
        handles.gan_seed,
    )
    return assets, (weight_pack, trace_pack)


def _execute_fleet_run(
    task: RunTask,
    assets: Optional[TrainedAssets],
    client: ScoringClient,
) -> RunRecord:
    """One grid cell with service-routed GON scoring.

    Runs through the same :func:`campaign.run_cell` tail as every
    other mode; only the model factory differs -- GON-CAROL models
    mount the shared weight views and a :class:`FleetScorer` instead
    of a private copy of the weights.
    """

    def build(config, _run_seed):
        model_class = _GON_CAROL_CLASSES.get(task.model)
        if model_class is None:
            return build_model(
                task.model, assets, config,
                carol_config=cell_carol_config(task, config),
                scorer_backend=task.scorer_backend,
            )
        if assets is None:
            raise RuntimeError(
                f"fleet run {task.model!r} needs published scenario assets"
            )
        gon = _mount_gon(
            assets.gon_state, assets.gon_hidden, assets.gon_layers,
            assets.seed,
        )
        return model_class(
            gon,
            config.alpha,
            config.beta,
            cell_carol_config(task, config),
            scorer=FleetScorer(client, gon, backend=task.scorer_backend),
        )

    return run_cell(task, build)


def _heartbeat_interval(heartbeat_timeout: float) -> float:
    """Worker ping cadence: several beats per liveness window."""
    if heartbeat_timeout > 0:
        return max(0.2, min(5.0, heartbeat_timeout / 4.0))
    return 5.0


def _start_heartbeat(
    client_id: int, put: Callable, interval: float
) -> threading.Event:
    """Send ``Ping`` frames on a daemon thread until the event is set.

    Pings prove the worker *process* is alive even while its main
    thread is deep in a long numpy cell; they deliberately do not
    count as transport activity (``--max-idle`` must still fire on a
    fleet that pings but never computes).
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval):
            try:
                put(Ping(client_id))
            except Exception:
                return  # channel gone; the main thread will notice

    threading.Thread(
        target=beat, name=f"fleet-heartbeat-{client_id}", daemon=True
    ).start()
    return stop


def _run_lease_loop(
    client_id: int,
    tasks_by_cell: Dict[int, RunTask],
    assets_by_scenario: Dict[str, TrainedAssets],
    request_endpoint,
    reply_endpoint,
    results_queue,
    base: dict,
) -> Tuple[int, ...]:
    """Pull-run-acknowledge until the coordinator reports the grid drained.

    ``request_endpoint`` / ``reply_endpoint`` are queue-likes (the
    worker's mp queues, or the :class:`TcpWorkerChannel` twice).
    Returns the poisoned cell ids the drained grant carried.  Raises
    on protocol violations (the reply to a ``LeaseRequest`` must be
    the matching ``LeaseGrant`` -- anything else means the service and
    worker disagree about the conversation state).
    """
    request_ids = _count(1)
    while True:
        request_id = next(request_ids)
        request_endpoint.put(
            LeaseRequest(client_id=client_id, request_id=request_id)
        )
        grant = reply_endpoint.get()
        if not isinstance(grant, LeaseGrant) or grant.request_id != request_id:
            raise RuntimeError(
                f"worker {client_id} lease request {request_id} answered "
                f"with {type(grant).__name__}: fleet protocol violated"
            )
        if grant.drained:
            return tuple(int(cell) for cell in grant.poisoned)
        if grant.cell_id < 0:
            # Queue momentarily empty but not drained: cells leased
            # elsewhere may yet be revoked and re-queued.
            time.sleep(_LEASE_POLL_SECONDS)
            continue
        task = tasks_by_cell[grant.cell_id]
        client = ScoringClient(
            client_id, task.scenario, request_endpoint, reply_endpoint
        )
        record = _execute_fleet_run(
            task, assets_by_scenario.get(task.scenario), client
        )
        results_queue.put(record)
        request_endpoint.put(CellDone(client_id=client_id, cell_id=grant.cell_id))
        # Cumulative-so-far snapshot for the service's live /status
        # view (latest per client replaces earlier ones).
        request_endpoint.put(StatsUpdate(client_id, _telemetry.delta(base)))


def _fleet_worker_main(
    worker_id: int,
    tasks: Sequence[RunTask],
    handles: Dict[str, _ScenarioHandles],
    request_queue,
    reply_queue,
    results_queue,
    heartbeat_interval: float = 5.0,
) -> None:
    """Worker process: mount shared assets, lease cells, stream records.

    Every worker receives the *full* task list -- which cells it
    actually runs is decided lease by lease at runtime.
    """
    opened: List[AttachedArrayPack] = []
    # Everything below is reported relative to this base so the
    # fork-inherited parent registry state never double-counts.
    base = _telemetry.snapshot()
    stop_heartbeat = threading.Event()
    try:
        assets_by_scenario: Dict[str, TrainedAssets] = {}
        for scenario, scenario_handles in handles.items():
            assets, packs = _attach_assets(scenario_handles)
            assets_by_scenario[scenario] = assets
            opened.extend(packs)
        tasks_by_cell = {task.run_index: task for task in tasks}
        stop_heartbeat = _start_heartbeat(
            worker_id, request_queue.put, heartbeat_interval
        )
        poisoned = _run_lease_loop(
            worker_id,
            tasks_by_cell,
            assets_by_scenario,
            request_queue,
            reply_queue,
            results_queue,
            base,
        )
        results_queue.put(
            _WorkerDone(worker_id, _telemetry.delta(base), poisoned)
        )
    finally:
        # Sign off even on failure so the scorer loop can revoke this
        # worker's lease and hand the cell to a survivor.
        stop_heartbeat.set()
        request_queue.put(ClientDone(worker_id))
        for pack in opened:
            pack.close()


def _tcp_fleet_worker_main(
    worker_id: int,
    tasks: Sequence[RunTask],
    address: str,
    results_queue,
    heartbeat_interval: float = 5.0,
    auth_token: str = "",
) -> None:
    """TCP worker: connect, fetch assets over the socket, lease cells.

    Mirrors :func:`_fleet_worker_main` with the network asset path:
    each needed scenario's weight and trace packs are fetched once
    (cached per process by :func:`repro.serving.fetch_array_pack`)
    instead of attaching ``multiprocessing.shared_memory``.  The
    client id is assigned by the service at handshake -- late joiners
    simply connect and start leasing; ``worker_id`` only names the
    local process.
    """
    channel = TcpWorkerChannel(address, auth_token=auth_token)
    base = _telemetry.snapshot()
    stop_heartbeat = threading.Event()
    try:
        index = channel.fetch_index()
        assets_by_scenario: Dict[str, TrainedAssets] = {}
        needed = sorted(
            {task.scenario for task in tasks if task.model in _CAROL_FAMILY}
        )
        for scenario in needed:
            meta = index.get(scenario)
            if meta is None:
                continue
            weights = fetch_array_pack(channel, f"{scenario}/weights")
            trace = fetch_array_pack(channel, f"{scenario}/trace")
            assets_by_scenario[scenario] = _rebuild_assets(
                weights.arrays,
                trace.arrays,
                int(meta["gon_hidden"]),
                int(meta["gon_layers"]),
                int(meta["seed"]),
                int(meta["gan_seed"]),
            )
        tasks_by_cell = {task.run_index: task for task in tasks}
        stop_heartbeat = _start_heartbeat(
            channel.client_id, channel.put, heartbeat_interval
        )
        poisoned = _run_lease_loop(
            channel.client_id,
            tasks_by_cell,
            assets_by_scenario,
            channel,
            channel,
            results_queue,
            base,
        )
        results_queue.put(
            _WorkerDone(worker_id, _telemetry.delta(base), poisoned)
        )
    finally:
        stop_heartbeat.set()
        try:
            channel.put(ClientDone(channel.client_id))
        except Exception:
            pass  # the socket is already gone; the service saw the EOF
        channel.close()


def _pack_campaign_assets(
    shared_assets: Dict[str, TrainedAssets],
) -> Tuple[Dict[str, tuple], Dict[str, Dict[str, int]], Dict[str, GONDiscriminator]]:
    """Pack every scenario's assets for TCP publication.

    Returns ``(asset_packs, asset_index, models)``: the named
    ``(buffer, manifest)`` packs the transport serves to remote
    workers, the scenario metadata index, and the service-side GON
    replicas mounted as zero-copy views over the very same buffers --
    the weights exist once in the serving process.
    """
    packs: Dict[str, tuple] = {}
    index: Dict[str, Dict[str, int]] = {}
    models: Dict[str, GONDiscriminator] = {}
    for scenario, assets in shared_assets.items():
        weight_buffer, weight_manifest = pack_state(assets.gon_state)
        packs[f"{scenario}/weights"] = (weight_buffer, weight_manifest)
        packs[f"{scenario}/trace"] = pack_state(_trace_arrays(assets))
        index[scenario] = {
            "gon_hidden": assets.gon_hidden,
            "gon_layers": assets.gon_layers,
            "seed": assets.seed,
            "gan_seed": assets.gan_seed,
        }
        models[scenario] = _mount_gon(
            unpack_state(weight_buffer, weight_manifest),
            assets.gon_hidden,
            assets.gon_layers,
            assets.seed,
        )
    return packs, index, models


def _start_chaos(
    chaos: Optional[Callable[[FleetChaosHandle], None]],
    handle: FleetChaosHandle,
) -> Optional[threading.Thread]:
    """Run the chaos hook on a daemon thread (failures printed, not raised).

    A broken hook must not wedge the campaign -- the failure surfaces
    through the assertions the hook was meant to enable.
    """
    if chaos is None:
        return None

    def run() -> None:
        try:
            chaos(handle)
        except Exception:
            print("fleet chaos hook failed:", file=sys.stderr)
            traceback.print_exc()

    thread = threading.Thread(target=run, name="fleet-chaos", daemon=True)
    thread.start()
    return thread


def _start_worker_watchdog(
    workers: List, request_queue, service: GONScoringService
) -> threading.Event:
    """Queue-mode liveness: dead worker processes become ``WorkerLost``.

    TCP readers see an EOF when a worker dies; multiprocessing queues
    report nothing, so the parent polls ``Process.is_alive`` and
    injects the loss frame itself.  A worker whose ``ClientDone`` is
    already queued wins the race harmlessly -- the service ignores
    losses for signed-off clients.
    """
    stop = threading.Event()

    def watch() -> None:
        notified: Set[int] = set()
        while not stop.wait(0.5):
            for client_id, worker in enumerate(list(workers)):
                if client_id in notified or worker.is_alive():
                    continue
                notified.add(client_id)
                if client_id in service.signed_off:
                    continue
                request_queue.put(
                    WorkerLost(
                        client_id,
                        reason=(
                            "worker process exited with code "
                            f"{worker.exitcode}"
                        ),
                    )
                )

    threading.Thread(target=watch, name="fleet-watchdog", daemon=True).start()
    return stop


class _ElasticCollector:
    """Drains worker records on a thread *while* the scoring loop runs.

    Historically collection happened after ``serve_transport``
    returned, which was fine when records only had to reach the
    parent's memory -- but a store-backed campaign must persist each
    record the moment it arrives, or a SIGKILL mid-campaign loses
    everything workers already delivered.  The collector therefore
    starts before the serve loop and feeds every first-seen record to
    ``on_record`` (the campaign's store persist hook) as it lands.

    A cell is accounted for when its record arrived *or* a drained
    worker reported it poisoned.  Duplicate records (zombie workers
    finishing a revoked lease) are dropped first-wins and counted in
    ``fleet.duplicate_records``.  Liveness, not a wall-clock budget,
    decides when to give up: while any worker is alive we keep
    waiting; once every worker has exited, whatever is coming is
    already in the queue's pipe buffer, so a short drain grace period
    bounds the wait before failing loudly.  ``result()`` joins the
    thread and re-raises whatever the drain loop raised (lost-record
    errors, a failing ``on_record`` persist).
    """

    def __init__(
        self,
        results_queue,
        expected: Set[int],
        workers: List,
        on_record: Optional[Callable[[RunRecord], None]] = None,
    ) -> None:
        self._queue = results_queue
        self._expected = set(expected)
        self._workers = workers
        self._on_record = on_record
        self.records: Dict[int, RunRecord] = {}
        self.poisoned: Set[int] = set()
        self.snapshots: List[dict] = []
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._drain, name="fleet-collector", daemon=True
        )
        self._thread.start()

    def _take(self, item) -> None:
        if isinstance(item, _WorkerDone):
            self.snapshots.append(item.snapshot)
            self.poisoned.update(item.poisoned)
        elif item.run_index in self.records:
            _DUPLICATE_RECORDS.inc()
        else:
            self.records[item.run_index] = item
            if self._on_record is not None:
                self._on_record(item)

    def _drain(self) -> None:
        try:
            grace_deadline: Optional[float] = None
            while True:
                outstanding = (
                    self._expected - set(self.records) - self.poisoned
                )
                alive = any(w.is_alive() for w in list(self._workers))
                if not outstanding and not alive:
                    break
                try:
                    self._take(self._queue.get(timeout=0.5))
                    continue
                except queue_module.Empty:
                    pass
                if alive:
                    grace_deadline = None
                    continue
                if not outstanding:
                    continue  # workers draining their exit; loop re-checks
                if grace_deadline is None:
                    grace_deadline = time.monotonic() + _DRAIN_GRACE_SECONDS
                if time.monotonic() >= grace_deadline:
                    raise RuntimeError(
                        "fleet campaign lost records for cells "
                        f"{sorted(outstanding)}: every worker exited but "
                        "the results never arrived -- check worker stderr "
                        "above"
                    )
            # Final sweep for already-buffered straggler frames (a
            # zombie's duplicate record, a late _WorkerDone) so
            # accounting is complete.
            while True:
                try:
                    self._take(self._queue.get(timeout=0.2))
                except queue_module.Empty:
                    break
        except BaseException as error:  # re-raised from result()
            self._error = error

    def result(self) -> Tuple[Dict[int, RunRecord], Set[int], List[dict]]:
        """Join the drain thread; raise its error or return its haul."""
        self._thread.join()
        if self._error is not None:
            raise self._error
        return self.records, self.poisoned, self.snapshots


def _warn_poisoned(poisoned: Set[int], retry_budget: int) -> None:
    if poisoned:
        print(
            f"warning: fleet campaign quarantined {len(poisoned)} poisoned "
            f"cell(s) {sorted(poisoned)} after {retry_budget} failed "
            "attempt(s) each; their records are omitted",
            file=sys.stderr,
        )


def run_fleet_campaign(
    config,
    tasks: Sequence[RunTask],
    shared_assets: Dict[str, TrainedAssets],
    stats_sink: Optional[List[ServiceStats]] = None,
    telemetry_sink: Optional[List[dict]] = None,
    chaos: Optional[Callable[[FleetChaosHandle], None]] = None,
    record_sink: Optional[Callable[[RunRecord], None]] = None,
) -> List[RunRecord]:
    """Execute ``tasks`` with an elastic fleet against one scoring service.

    ``shared_assets`` maps scenario name -> offline assets (from
    :func:`~repro.experiments.campaign.prepare_campaign_assets`).
    ``stats_sink``, when given, receives the scorer's
    :class:`ServiceStats` for telemetry/benchmarks (empty when the
    service is remote -- its stats live in the serving process).
    ``telemetry_sink``, when given, receives one merged registry
    snapshot covering the parent (service included when self-hosted)
    and every surviving worker's final delta (a killed worker's
    in-flight telemetry dies with it; its cells' records do not).
    ``record_sink``, when given, receives each first-seen record the
    moment it arrives from a worker -- ``run_campaign`` passes its
    store persist hook here, which is what makes a SIGKILLed fleet
    campaign resumable.  ``config.transport`` selects queue or TCP
    plumbing; ``chaos`` (tests only) receives a
    :class:`FleetChaosHandle` on a daemon thread once the fleet is
    running.
    """
    tasks = list(tasks)
    if not tasks:
        if telemetry_sink is not None:
            telemetry_sink.append(merge_snapshots())
        return []
    if getattr(config, "transport", "queue") == "tcp":
        return _run_tcp_fleet_campaign(
            config, tasks, shared_assets, stats_sink, telemetry_sink, chaos,
            record_sink,
        )
    base = _telemetry.snapshot()
    ctx = multiprocessing.get_context()
    n_workers = max(1, min(config.workers, len(tasks)))
    retry_budget = int(getattr(config, "cell_retry_budget", 3))
    heartbeat_timeout = float(getattr(config, "heartbeat_timeout", 30.0))
    interval = _heartbeat_interval(heartbeat_timeout)
    coordinator = CellCoordinator(
        [task.run_index for task in tasks], retry_budget=retry_budget
    )

    packs: List[SharedArrayPack] = []
    handles: Dict[str, _ScenarioHandles] = {}
    models: Dict[str, GONDiscriminator] = {}
    workers: List = []
    watchdog_stop: Optional[threading.Event] = None
    try:
        for scenario, assets in shared_assets.items():
            weight_pack, trace_pack, scenario_handles = _publish_assets(assets)
            packs.extend((weight_pack, trace_pack))
            handles[scenario] = scenario_handles
            # The service replica reads the same shared segment: the
            # weights exist once on the machine, scorer included.
            models[scenario] = _mount_gon(
                weight_pack.arrays, assets.gon_hidden, assets.gon_layers,
                assets.seed,
            )

        transport = QueueTransport(n_workers, ctx=ctx)
        results_queue = ctx.Queue()
        workers.extend(
            ctx.Process(
                target=_fleet_worker_main,
                args=(
                    i, tasks, handles,
                    *transport.worker_endpoints(i), results_queue, interval,
                ),
                daemon=True,
            )
            for i in range(n_workers)
        )
        for worker in workers:
            worker.start()

        service = GONScoringService(
            models,
            transport.request_queue,
            transport.reply_queues,
            merge_requests=bool(getattr(config, "fleet_merge", False)),
            scorer_backend=getattr(config, "scorer_backend", "exact"),
            coordinator=coordinator,
            heartbeat_timeout=heartbeat_timeout,
        )
        watchdog_stop = _start_worker_watchdog(
            workers, transport.request_queue, service
        )
        _start_chaos(
            chaos,
            FleetChaosHandle(
                workers=workers,
                coordinator=coordinator,
                service=service,
                transport=transport,
            ),
        )

        def abort() -> bool:
            if coordinator.finished:
                return False
            if any(worker.is_alive() for worker in list(workers)):
                return False
            raise RuntimeError(
                "fleet campaign stalled: every worker exited (a worker "
                "crashed -- check stderr above) with cells "
                f"{sorted(set(coordinator.lease_view()))} leased and "
                f"{coordinator.status()['pending']} still queued"
            )

        collector = _ElasticCollector(
            results_queue,
            {task.run_index for task in tasks},
            workers,
            on_record=record_sink,
        )
        stats = serve_transport(service, transport, abort=abort)
        if stats_sink is not None:
            stats_sink.append(stats)

        records, poisoned, worker_snapshots = collector.result()
        poisoned |= set(coordinator.poisoned)
        _warn_poisoned(poisoned, retry_budget)
        if telemetry_sink is not None:
            # The parent delta carries the service-side registry
            # (service.*, gon.*, fleet.*); each worker delta carries
            # its sim/campaign/carol side.
            telemetry_sink.append(
                merge_snapshots(_telemetry.delta(base), *worker_snapshots)
            )
        for worker in workers:
            worker.join(timeout=_COLLECT_TIMEOUT)
        return sorted(records.values(), key=lambda record: record.run_index)
    finally:
        if watchdog_stop is not None:
            watchdog_stop.set()
        # On failure paths (stalled fleet, lost records) the survivors
        # are still blocked on their reply queues: tear them down so a
        # long-lived host process never accumulates stuck children.
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        for pack in packs:
            pack.close()
            pack.unlink()


def _run_tcp_fleet_campaign(
    config,
    tasks: Sequence[RunTask],
    shared_assets: Dict[str, TrainedAssets],
    stats_sink: Optional[List[ServiceStats]] = None,
    telemetry_sink: Optional[List[dict]] = None,
    chaos: Optional[Callable[[FleetChaosHandle], None]] = None,
    record_sink: Optional[Callable[[RunRecord], None]] = None,
) -> List[RunRecord]:
    """Fleet execution over sockets: self-hosted or external service.

    Without ``config.service_addr`` the parent binds an ephemeral
    localhost port, serves the scoring loop itself (elastic: late
    joiners welcome, reader EOFs become lease revocations) and spawns
    local workers that connect to it.  With ``service_addr`` the
    workers connect to an externally hosted service
    (``python -m repro serve``) and fetch assets from it -- this
    process never trains or publishes anything, and lease accounting
    lives entirely in the serving process.
    """
    base = _telemetry.snapshot()
    ctx = multiprocessing.get_context()
    n_workers = max(1, min(config.workers, len(tasks)))
    retry_budget = int(getattr(config, "cell_retry_budget", 3))
    heartbeat_timeout = float(getattr(config, "heartbeat_timeout", 30.0))
    interval = _heartbeat_interval(heartbeat_timeout)
    auth_token = str(getattr(config, "auth_token", "") or "")
    service_addr = str(getattr(config, "service_addr", "") or "")

    transport: Optional[TcpTransport] = None
    coordinator: Optional[CellCoordinator] = None
    service: Optional[GONScoringService] = None
    workers: List = []
    try:
        if service_addr:
            address = service_addr
            models: Dict[str, GONDiscriminator] = {}
        else:
            coordinator = CellCoordinator(
                [task.run_index for task in tasks], retry_budget=retry_budget
            )
            asset_packs, asset_index, models = _pack_campaign_assets(shared_assets)
            transport = TcpTransport(
                n_workers,
                asset_packs=asset_packs,
                asset_index=asset_index,
                auth_token=auth_token,
                elastic=True,
            )
            transport.start()
            address = transport.address

        results_queue = ctx.Queue()
        worker_ids = _count()

        def spawn_worker():
            worker = ctx.Process(
                target=_tcp_fleet_worker_main,
                args=(
                    next(worker_ids), tasks, address, results_queue,
                    interval, auth_token,
                ),
                daemon=True,
            )
            worker.start()
            workers.append(worker)
            return worker

        for _ in range(n_workers):
            spawn_worker()

        if transport is not None:
            service = GONScoringService(
                models,
                transport.request_queue,
                transport.reply_queues,
                merge_requests=bool(getattr(config, "fleet_merge", False)),
                scorer_backend=getattr(config, "scorer_backend", "exact"),
                coordinator=coordinator,
                heartbeat_timeout=heartbeat_timeout,
            )
            service.on_worker_lost = transport.close_client

        _start_chaos(
            chaos,
            FleetChaosHandle(
                workers=workers,
                coordinator=coordinator,
                service=service,
                transport=transport,
                address=address,
                spawn_worker=spawn_worker,
            ),
        )

        collector = _ElasticCollector(
            results_queue,
            {task.run_index for task in tasks},
            workers,
            on_record=record_sink,
        )
        if service is not None:

            def abort() -> bool:
                if coordinator.finished:
                    return False
                if any(worker.is_alive() for worker in list(workers)):
                    return False
                raise RuntimeError(
                    "fleet campaign stalled: every worker exited (a "
                    "worker crashed -- check stderr above) with cells "
                    f"{sorted(set(coordinator.lease_view()))} leased and "
                    f"{coordinator.status()['pending']} still queued"
                )

            stats = serve_transport(service, transport, abort=abort)
            if stats_sink is not None:
                stats_sink.append(stats)

        records, poisoned, worker_snapshots = collector.result()
        if coordinator is not None:
            poisoned |= set(coordinator.poisoned)
        _warn_poisoned(poisoned, retry_budget)
        if telemetry_sink is not None:
            telemetry_sink.append(
                merge_snapshots(_telemetry.delta(base), *worker_snapshots)
            )
        for worker in workers:
            worker.join(timeout=_COLLECT_TIMEOUT)
        return sorted(records.values(), key=lambda record: record.run_index)
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        if transport is not None:
            transport.close()


def _status_provider(
    service: GONScoringService,
    transport: TcpTransport,
    n_clients: int,
    coordinator: Optional[CellCoordinator] = None,
    chaos_control: Optional[ChaosControl] = None,
) -> Callable[[], dict]:
    """Build the ``/status`` JSON assembler for a hosted service.

    Pure observation: merges the service-process registry with the
    latest STATS frame from every worker, derives the cell progress
    view from the merged ``campaign.cells_*`` counters, reports
    connection/sign-off/loss state, and (elastic services) surfaces
    the coordinator's lease/requeue/poison accounting plus the chaos
    injection log under ``"fleet"``.  Safe to call from the status
    server's threads mid-``serve()``.
    """

    def provider() -> dict:
        merged = service.merged_telemetry()
        counters = merged.get("counters", {})
        started = int(counters.get("campaign.cells_started", 0))
        completed = int(counters.get("campaign.cells_completed", 0))
        status = {
            "workers": {
                "connected": transport.n_connected,
                "expected": n_clients,
                "signed_off": len(service.signed_off),
                "lost": len(service.lost),
            },
            "cells": {
                "started": started,
                "completed": completed,
                "in_flight": max(0, started - completed),
            },
            "service": asdict(service.stats),
            "telemetry": merged,
        }
        if coordinator is not None:
            fleet = coordinator.status()
            fleet["workers_lost"] = len(service.lost)
            fleet["heartbeat_ages"] = {
                str(client_id): round(age, 3)
                for client_id, age in sorted(service.heartbeat_ages().items())
            }
            fleet["replies_dropped"] = service.replies_dropped
            fleet["auth_rejections"] = getattr(transport, "auth_rejections", 0)
            fleet["injections"] = (
                chaos_control.log() if chaos_control is not None else []
            )
            status["fleet"] = fleet
        return status

    return provider


def serve_fleet_service(
    config,
    shared_assets: Dict[str, TrainedAssets],
    host: str = "127.0.0.1",
    port: int = 0,
    n_clients: int = 2,
    idle_timeout: float = 0.0,
    on_ready: Optional[Callable[[str, int], None]] = None,
    status_port: Optional[int] = None,
    status_host: str = "127.0.0.1",
    telemetry_sink: Optional[List[dict]] = None,
    auth_token: str = "",
) -> ServiceStats:
    """Host one elastic scoring service for remote campaign workers.

    The backbone of ``python -m repro serve``: plans ``config``'s grid
    into a lease queue, publishes ``shared_assets`` on an elastic
    :class:`TcpTransport`, calls ``on_ready`` with the bound
    ``(host, port)``, then scores until the grid is drained and every
    connected worker has signed off or been declared lost.
    ``n_clients`` is the *expected* fleet size for the status view --
    workers may come and go freely (``--min-workers``), and the
    campaign survives any churn the retry budget absorbs.
    ``idle_timeout > 0`` (``--max-idle``) aborts loudly when no
    non-heartbeat frame has arrived for that many seconds (covers
    fleets that never connect as well as fleets that ping but stopped
    computing).

    ``status_port`` (0 = ephemeral) additionally binds an HTTP
    :class:`~repro.serving.StatusServer` next to the scoring socket
    serving ``/status`` + ``/metrics`` from the live merged telemetry
    and the ``POST /inject`` chaos control plane
    (:class:`~repro.serving.ChaosControl`); ``None`` (the default)
    serves no HTTP.  ``auth_token`` (or ``config.auth_token``) gates
    handshakes: a ``Hello`` with the wrong token is rejected before
    ``Welcome``.  ``telemetry_sink``, when given, receives the final
    merged snapshot after the scoring loop winds down.

    With ``config.store == "sqlite"`` the service resumes: cells whose
    records the store already holds are born completed in the lease
    queue (``fleet.cells_resumed``) and never handed to workers.  The
    campaign parent that connects must use the same store -- it is the
    side that restores those cells' records; this process only skips
    the leases.
    """
    from ..serving.transports import TransportError

    tasks = plan_tasks(config)
    retry_budget = int(getattr(config, "cell_retry_budget", 3))
    completed: List[int] = []
    if getattr(config, "store", "memory") == "sqlite":
        from ..storage import open_store

        config_hash = campaign_config_hash(config)
        with open_store(config.store, config.store_path) as store:
            store.register_campaign(
                config_hash, campaign_grid_identity(config)
            )
            done = store.completed_cells(config_hash)
        completed = [
            task.run_index
            for task in tasks
            if (task.scenario, task.model, task.seed_index) in done
        ]
        if completed:
            print(
                f"store: {len(completed)} of {len(tasks)} cells already "
                "completed; they will not be leased",
                file=sys.stderr,
            )
    coordinator = CellCoordinator(
        [task.run_index for task in tasks],
        retry_budget=retry_budget,
        completed=completed,
    )
    auth_token = auth_token or str(getattr(config, "auth_token", "") or "")
    asset_packs, asset_index, models = _pack_campaign_assets(shared_assets)
    transport = TcpTransport(
        n_clients,
        host=host,
        port=port,
        asset_packs=asset_packs,
        asset_index=asset_index,
        auth_token=auth_token,
        elastic=True,
    )
    transport.start()
    status_server: Optional[StatusServer] = None
    try:
        service = GONScoringService(
            models,
            transport.request_queue,
            transport.reply_queues,
            merge_requests=bool(getattr(config, "fleet_merge", False)),
            scorer_backend=getattr(config, "scorer_backend", "exact"),
            coordinator=coordinator,
            heartbeat_timeout=float(getattr(config, "heartbeat_timeout", 30.0)),
        )
        service.on_worker_lost = transport.close_client
        chaos_control = ChaosControl(service, coordinator, transport)
        if status_port is not None:
            status_server = StatusServer(
                _status_provider(
                    service, transport, n_clients, coordinator, chaos_control
                ),
                host=status_host,
                port=status_port,
                inject_handler=chaos_control.inject,
            ).start()
            print(
                f"status endpoint on http://{status_server.address}/status",
                file=sys.stderr,
            )
        if on_ready is not None:
            on_ready(transport.host, transport.port)

        abort = None
        if idle_timeout > 0:

            def abort() -> bool:
                idle = time.monotonic() - transport.last_activity
                if idle > idle_timeout:
                    raise TransportError(
                        f"scoring service idle for {idle:.0f}s "
                        f"({transport.n_connected} of {n_clients} workers "
                        "connected); shutting down"
                    )
                return False

        stats = serve_transport(service, transport, abort=abort)
        _warn_poisoned(set(coordinator.poisoned), retry_budget)
        if telemetry_sink is not None:
            telemetry_sink.append(service.merged_telemetry())
        return stats
    finally:
        if status_server is not None:
            status_server.close()
        transport.close()
