"""Fig. 2 -- confidence scores and POT thresholds over time (§III-B).

The paper visualises 1000 scheduling intervals of CAROL's confidence
stream with the dynamic POT threshold underneath and shaded bands where
confidence dipped below it and the GON was fine-tuned.  This experiment
re-creates the run and reports the series plus summary statistics (how
many intervals triggered fine-tuning -- the parsimony claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import ExperimentConfig, ci_scale
from ..core import CAROL, CAROLConfig
from .calibration import TrainedAssets, prepare_assets
from .report import sparkline
from .runner import run_experiment

__all__ = ["Fig2Config", "Fig2Result", "run_fig2", "format_fig2"]


@dataclass
class Fig2Config:
    base: ExperimentConfig = field(default_factory=ci_scale)
    #: Evaluation length (paper: 1000 intervals).
    n_intervals: int = 60
    trace_intervals: int = 120
    gon_hidden: int = 48
    gon_layers: int = 3


@dataclass
class Fig2Result:
    confidences: List[float]
    thresholds: List[float]
    fine_tuned: List[bool]

    @property
    def n_fine_tunes(self) -> int:
        return int(sum(self.fine_tuned))

    @property
    def fine_tune_fraction(self) -> float:
        if not self.fine_tuned:
            return 0.0
        return self.n_fine_tunes / len(self.fine_tuned)


def run_fig2(
    config: Optional[Fig2Config] = None,
    assets: Optional[TrainedAssets] = None,
) -> Fig2Result:
    config = config or Fig2Config()
    assets = assets or prepare_assets(
        config.base,
        trace_intervals=config.trace_intervals,
        gon_hidden=config.gon_hidden,
        gon_layers=config.gon_layers,
    )
    from dataclasses import replace

    base = replace(config.base, n_intervals=config.n_intervals)
    carol = CAROL(
        assets.fresh_gon(),
        base.alpha,
        base.beta,
        CAROLConfig(seed=base.seed),
    )
    run_experiment(carol, base)
    diag = carol.diagnostics
    return Fig2Result(
        confidences=list(diag.confidences),
        thresholds=list(diag.thresholds),
        fine_tuned=list(diag.fine_tuned),
    )


def format_fig2(result: Fig2Result) -> str:
    """Sparkline view of the confidence stream with trigger statistics."""
    finite_thresholds = [t for t in result.thresholds if np.isfinite(t)]
    bands = "".join("#" if f else "." for f in result.fine_tuned)
    lines = [
        "-- Fig. 2: confidence scores and POT threshold --",
        f"confidence: {sparkline(result.confidences)}",
        f"threshold : {sparkline(finite_thresholds)}",
        f"fine-tune bands (#): {bands}",
        (
            f"intervals={len(result.confidences)} fine_tunes={result.n_fine_tunes} "
            f"({100 * result.fine_tune_fraction:.1f}% of intervals)"
        ),
        (
            f"mean confidence={np.mean(result.confidences):.3f} "
            f"min={np.min(result.confidences):.3f} "
            f"max={np.max(result.confidences):.3f}"
        ),
    ]
    return "\n".join(lines)
