"""Plain-text reporting: tables and sparklines for every figure.

The benches print the same rows/series the paper's figures plot; these
helpers keep the formatting consistent and terminal-friendly.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["format_table", "sparkline", "format_relative_table"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [
        [_render_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _render_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress a series into a unicode sparkline."""
    values = [v for v in values if np.isfinite(v)]
    if not values:
        return ""
    series = np.asarray(values, dtype=float)
    if len(series) > width:
        # Downsample by averaging buckets.
        edges = np.linspace(0, len(series), width + 1).astype(int)
        series = np.array(
            [series[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    low, high = float(series.min()), float(series.max())
    if high - low < 1e-12:
        return _SPARK_CHARS[0] * len(series)
    scaled = (series - low) / (high - low)
    indices = np.minimum(
        (scaled * len(_SPARK_CHARS)).astype(int), len(_SPARK_CHARS) - 1
    )
    return "".join(_SPARK_CHARS[i] for i in indices)


def format_relative_table(
    metric_label: str,
    values: Mapping[str, float],
    reference: str = "CAROL",
    lower_is_better: bool = True,
) -> str:
    """One Fig. 5 panel: absolute values plus performance relative to CAROL.

    The paper's right-hand axes plot each method's value divided by
    CAROL's; the same ratio appears here in the ``vs CAROL`` column.
    """
    if reference not in values:
        raise KeyError(f"reference model {reference!r} missing from results")
    base = values[reference]
    rows = []
    ordering = sorted(
        values.items(), key=lambda item: item[1], reverse=not lower_is_better
    )
    for name, value in ordering:
        ratio = value / base if base not in (0.0,) else float("nan")
        rows.append((name, value, f"{ratio:.3f}x"))
    return format_table(
        headers=("model", metric_label, "vs CAROL"),
        rows=rows,
        title=f"-- {metric_label} --",
    )
