"""Fig. 5 -- comparison with baselines and ablations (§V-C, §V-D).

Every resilience scheme runs on the *same* federation configuration --
AIoT workloads (unseen at training time), Poisson(1.2) arrivals,
fault injection at rate 0.5, 5-minute intervals, alpha = beta = 0.5 --
and six metrics are collected per run:

(a) total energy consumption, (b) mean response time, (c) SLO violation
rate, (d) mean decision time, (e) model memory consumption and
(f) total fine-tuning overhead.  The paper plots absolute values plus
each method's performance relative to CAROL; :func:`format_results`
prints the same panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import ExperimentConfig, ci_scale
from .calibration import (
    ABLATION_NAMES,
    BASELINE_NAMES,
    TrainedAssets,
    build_model,
    prepare_assets,
)
from .report import format_relative_table
from .runner import ExperimentResult, run_experiment

__all__ = ["Fig5Config", "run_fig5", "format_results", "METRIC_PANELS"]

#: (panel, summary key, label, lower-is-better) for each Fig. 5 subplot.
METRIC_PANELS = (
    ("a", "energy_kwh", "energy consumption (kWh)", True),
    ("b", "response_time_s", "response time (s)", True),
    ("c", "slo_violation_rate", "SLO violation rate", True),
    ("d", "decision_time_s", "decision time (s)", True),
    ("e", "memory_percent", "memory consumption (%)", True),
    ("f", "fine_tune_overhead_s", "fine-tuning overhead (s)", True),
)


@dataclass
class Fig5Config:
    """Scales for the comparison experiment."""

    base: ExperimentConfig = field(default_factory=ci_scale)
    trace_intervals: int = 150
    gon_hidden: int = 48
    gon_layers: int = 3
    include_ablations: bool = True
    models: Optional[Sequence[str]] = None

    def model_names(self) -> List[str]:
        if self.models is not None:
            return list(self.models)
        names = ["CAROL", *BASELINE_NAMES]
        if self.include_ablations:
            names.extend(ABLATION_NAMES)
        return names


def run_fig5(
    config: Optional[Fig5Config] = None,
    assets: Optional[TrainedAssets] = None,
) -> Dict[str, ExperimentResult]:
    """Run every scheme and return ``{model_name: result}``."""
    config = config or Fig5Config()
    assets = assets or prepare_assets(
        config.base,
        trace_intervals=config.trace_intervals,
        gon_hidden=config.gon_hidden,
        gon_layers=config.gon_layers,
    )
    results: Dict[str, ExperimentResult] = {}
    for name in config.model_names():
        model = build_model(name, assets, config.base)
        results[name] = run_experiment(model, config.base)
    return results


def format_results(results: Dict[str, ExperimentResult]) -> str:
    """Render the six Fig. 5 panels as relative tables."""
    summaries = {name: r.summary() for name, r in results.items()}
    reference = "CAROL" if "CAROL" in summaries else next(iter(summaries))
    panels = []
    for panel, key, label, lower_better in METRIC_PANELS:
        values = {name: s[key] for name, s in summaries.items()}
        panels.append(
            format_relative_table(
                f"Fig. 5({panel}) {label}",
                values,
                reference=reference,
                lower_is_better=lower_better,
            )
        )
    return "\n\n".join(panels)


#: Baselines that carry a trainable model (the paper's AI category).
AI_BASELINE_NAMES = ("LBOS", "ELBS", "FRAS", "TopoMAD", "StepGAN")


def headline_deltas(results: Dict[str, ExperimentResult]) -> Dict[str, float]:
    """The paper's headline percentages, recomputed from this run.

    Energy / response / SLO reductions compare CAROL against the best
    *baseline* (ablations excluded), as in §V-C.  The overhead
    reduction compares against the cheapest *AI* baseline -- the
    paper's reference there is FRAS, the AI method with the lowest
    overhead; heuristics' score updates are near-free in this
    reproduction (see EXPERIMENTS.md) so including them would make the
    ratio meaningless.
    """
    summaries = {name: r.summary() for name, r in results.items()}
    carol = summaries["CAROL"]
    baselines = {
        name: s for name, s in summaries.items() if name in BASELINE_NAMES
    }
    if not baselines:
        raise ValueError("no baselines in the result set")
    ai_baselines = {
        name: s for name, s in summaries.items() if name in AI_BASELINE_NAMES
    }

    def reduction(key: str, pool: Dict[str, Dict[str, float]]) -> float:
        best = min(s[key] for s in pool.values())
        if best <= 0:
            return 0.0
        return 100.0 * (best - carol[key]) / best

    return {
        "energy_reduction_pct": reduction("energy_kwh", baselines),
        "response_time_reduction_pct": reduction("response_time_s", baselines),
        "slo_violation_reduction_pct": reduction("slo_violation_rate", baselines),
        "overhead_reduction_pct": reduction(
            "fine_tune_overhead_s", ai_baselines or baselines
        ),
    }
