"""Experiment runner: drive a resilience model on the co-simulator.

One function, :func:`run_experiment`, executes the four-phase interval
protocol for any :class:`~repro.core.interface.ResilienceModel` and
measures -- from the outside -- the three cost metrics of Fig. 5:
decision time (the ``repair`` call), fine-tuning overhead (the
``observe`` call) and the model's memory footprint.

Model compute is charged back to the simulated brokers: a second of
Python wall-time on this machine corresponds to ``edge_slowdown``
seconds on a Raspberry Pi-class broker (single-core ratio between a
workstation core and the Pi 4B's A72), reproducing the paper's causal
link between fine-tuning overhead and broker contention (§I).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..config import ExperimentConfig
from ..core.interface import ResilienceModel
from ..simulator.engine import EdgeFederation
from ..simulator.metrics import RunMetrics

__all__ = ["run_experiment", "ExperimentResult", "EDGE_SLOWDOWN"]

#: Wall-time multiplier mapping workstation-Python seconds to Pi-class
#: broker seconds (see DESIGN.md, substitution table).
EDGE_SLOWDOWN = 25.0


@dataclass
class ExperimentResult:
    """A model's run plus its identity, ready for the Fig. 5 tables."""

    model_name: str
    metrics: RunMetrics

    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()


def run_experiment(
    model: ResilienceModel,
    config: ExperimentConfig,
    federation: Optional[EdgeFederation] = None,
    edge_slowdown: float = EDGE_SLOWDOWN,
) -> ExperimentResult:
    """Run ``model`` for ``config.n_intervals`` scheduling intervals."""
    federation = federation or EdgeFederation(config)
    run = RunMetrics()
    previous_overhead_seconds = 0.0

    for _ in range(config.n_intervals):
        report = federation.begin_interval()
        proposal = federation.propose_topology()
        view = federation.view

        started = time.perf_counter()
        topology = model.repair(view, report, proposal)
        decision_seconds = time.perf_counter() - started
        federation.set_topology(topology)

        # The model's compute and memory live on the brokers.
        federation.set_management_profile(
            cpu_seconds=min(
                (decision_seconds + previous_overhead_seconds) * edge_slowdown,
                config.federation.interval_seconds,
            ),
            memory_gb=model.memory_bytes() / 1024 ** 3,
        )

        metrics = federation.run_interval()

        started = time.perf_counter()
        model.observe(metrics, federation.view)
        overhead_seconds = time.perf_counter() - started

        run.add(metrics)
        run.decision_times.append(decision_seconds)
        run.fine_tune_times.append(overhead_seconds)
        previous_overhead_seconds = overhead_seconds

    run.model_memory_bytes = model.memory_bytes()
    return ExperimentResult(model_name=model.name, metrics=run)
