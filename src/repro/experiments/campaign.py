"""Campaign runner: scenario x model x seed grids across processes.

A *campaign* evaluates resilience models over the declarative scenario
catalog (:mod:`repro.scenarios`).  The grid is flattened into
independent :class:`RunTask` cells, each cell derives its own seed from
an ``np.random.SeedSequence.spawn`` child (independent, reproducible
streams -- never a shared or offset seed), and cells execute either
serially or fanned across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor`.

Because each cell is a pure function of its task description, campaign
results are **bit-identical regardless of worker count** -- the
property `tests/test_campaign.py` asserts.  To keep that guarantee,
runs execute with ``edge_slowdown=0`` (no wall-clock feedback into the
simulation) and only deterministic metrics enter the records; the
wall-clock cost metrics of Fig. 5 remain the business of
:mod:`repro.experiments.fig5_comparison`.

Cell identity and the config hash
---------------------------------
Every cell has a canonical id: ``(config_hash, scenario, model,
seed_index)``.  The within-campaign half, ``(scenario, model,
seed_index)``, names a grid position -- :func:`plan_tasks` derives the
cell's run seed from the campaign root ``SeedSequence`` and the cell's
fixed position, so the id fully determines the record.  The campaign
half, :func:`campaign_config_hash`, is the SHA-256 of
:func:`campaign_grid_identity`: exactly the
:class:`CampaignConfig` fields that can change record *content*
(:data:`GRID_IDENTITY_FIELDS` -- grid axes, root seed, interval and
offline-training sizes, ``shared_assets``, ``fleet_merge``,
``carol_overrides``, ``scorer_backend``) and **deliberately not** the
execution-topology fields (``workers``, ``mode``, ``transport``,
``service_addr``, timeouts, retry budget, credentials, the store
settings themselves), because the cross-mode bit-identity contract
guarantees those cannot change a record.  Two configs with equal
hashes therefore produce byte-identical records -- which is what lets
a :mod:`repro.storage` store substitute a stored record for a re-run
(*resume*), and why any change to the identity fields (or to this
hashing scheme itself) starts a fresh campaign instead of resuming:
the old records no longer describe the new grid.


Execution modes
---------------
``mode="process"`` (the classic path) fans cells across a
``ProcessPoolExecutor``; with ``shared_assets=True`` the offline
CAROL-family assets (trace + trained GON) are prepared once per
scenario in the parent -- seeded from the campaign root, not the run
seed -- and shipped to workers as pickled copies.  ``mode="fleet"``
(which implies shared assets) instead publishes those assets *once*
into ``multiprocessing.shared_memory`` and runs lightweight simulation
workers that feed one batched GON scoring service -- see
:mod:`repro.serving` and :mod:`repro.experiments.fleet`.  The
bit-identity guarantee extends across all modes at equal
``shared_assets``: serial, process-pool and fleet execution of the
same grid produce identical records.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as _telemetry
from ..core import CAROLConfig, TrainingConfig
from ..scenarios import ScenarioSpec, build_topology, get_scenario
from ..simulator.engine import EdgeFederation
from .calibration import (
    ABLATION_NAMES,
    BASELINE_NAMES,
    PROACTIVE_NAME,
    TrainedAssets,
    build_model,
    prepare_assets,
)
from .report import format_table
from .runner import run_experiment

__all__ = [
    "DETERMINISTIC_METRICS",
    "GRID_IDENTITY_FIELDS",
    "CampaignConfig",
    "RunTask",
    "RunRecord",
    "CampaignResult",
    "campaign_config_hash",
    "campaign_grid_identity",
    "canonical_model_name",
    "cell_carol_config",
    "plan_tasks",
    "prepare_campaign_assets",
    "record_from_payload",
    "record_to_payload",
    "run_campaign",
    "ci_campaign_config",
    "fleet_ci_campaign_config",
]

#: Summary keys that are pure functions of (scenario, model, seed) --
#: free of wall-clock measurement -- and therefore enter campaign
#: records and the parallel == serial bit-identity guarantee.
DETERMINISTIC_METRICS = (
    "energy_kwh",
    "response_time_s",
    "slo_violation_rate",
    "completed_tasks",
    "downtime_s",
)

#: Models whose construction consumes offline-trained assets.
_CAROL_FAMILY = ("CAROL", PROACTIVE_NAME, *ABLATION_NAMES)

# Campaign-level telemetry: every execution mode funnels through
# :func:`run_cell`, so these fire identically in serial, process-pool
# and fleet workers (fleet workers ship them onward as STATS frames).
_CELL_SPAN = _telemetry.span("campaign.cell")
_CELLS_STARTED = _telemetry.counter("campaign.cells_started")
_CELLS_COMPLETED = _telemetry.counter("campaign.cells_completed")
#: Cells restored from a campaign store instead of re-executed.  Same
#: name as the coordinator-side counter: the serve process counts
#: cells it never leases, a campaign parent counts records it never
#: re-runs -- both are "work the store saved us".
_CELLS_RESUMED = _telemetry.counter("fleet.cells_resumed")

_MODEL_LOOKUP = {
    name.lower(): name
    for name in ("CAROL", PROACTIVE_NAME, *BASELINE_NAMES, *ABLATION_NAMES)
}
#: Convenience alias: ``--models proactive`` means the §VI scheme.
_MODEL_LOOKUP["proactive"] = PROACTIVE_NAME


def canonical_model_name(name: str) -> str:
    """Resolve a case-insensitive model name to its canonical form."""
    canonical = _MODEL_LOOKUP.get(name.strip().lower())
    if canonical is None:
        raise ValueError(
            f"unknown model {name!r}; "
            f"known: {sorted(set(_MODEL_LOOKUP.values()))}"
        )
    return canonical


@dataclass(frozen=True)
class CampaignConfig:
    """A scenario x model x seed evaluation grid."""

    scenarios: Tuple[str, ...]
    models: Tuple[str, ...] = ("CAROL",)
    #: Independent repetitions per (scenario, model) cell.
    n_seeds: int = 1
    #: Worker processes; 1 runs serially in-process.
    workers: int = 1
    #: Root entropy of the campaign; every run seed descends from it.
    seed: int = 0
    #: Override for each scenario's default evaluation length.
    n_intervals: Optional[int] = None
    #: Offline-training sizes for CAROL-family runs (CI-scale defaults).
    trace_intervals: int = 40
    gon_hidden: int = 24
    gon_layers: int = 2
    gon_epochs: int = 6
    #: Execution backend: "process" fans runs across a process pool;
    #: "fleet" runs simulation workers against one shared batched GON
    #: scoring service (implies ``shared_assets``).
    mode: str = "process"
    #: Fleet plumbing: "queue" keeps the single-machine
    #: ``multiprocessing`` path (bit-for-bit the historical
    #: behaviour); "tcp" frames the same request/reply dataclasses
    #: over sockets (:mod:`repro.serving.wire`) so workers may live on
    #: other machines.  Both transports produce records bit-identical
    #: to serial execution.
    transport: str = "queue"
    #: TCP only: ``"host:port"`` of an externally hosted scoring
    #: service (``python -m repro serve``).  When set, this campaign
    #: spawns only simulation workers -- they connect to the remote
    #: service and fetch the offline assets over the socket, so no
    #: local asset training happens here.  Empty means self-host on an
    #: ephemeral localhost port.
    service_addr: str = ""
    #: Prepare CAROL-family offline assets once per scenario (seeded
    #: from the campaign root) instead of once per run.  Changes what
    #: CAROL-family records contain -- it is part of the grid spec, so
    #: serial == process == fleet holds at equal ``shared_assets``.
    shared_assets: bool = False
    #: Fleet only: let the scoring service concatenate concurrent
    #: request stacks into one ascent per bucket.  Maximum GON
    #: consolidation, but scores match the exact path only to ~1e-15
    #: (BLAS gemm varies in the last ulp with the leading dimension),
    #: so the bitwise record guarantee is waived -- see
    #: :mod:`repro.serving.service`.
    fleet_merge: bool = False
    #: Extra :class:`~repro.core.CAROLConfig` fields applied to every
    #: CAROL-family cell, as ``((field, value), ...)`` pairs (hashable
    #: and picklable).  Part of the grid spec, so the serial == process
    #: == fleet bit-identity contract covers it -- e.g.
    #: ``(("pot_calibration", 5),)`` makes short grids open the POT
    #: gate and exercise fine-tuning (the overlay path in fleet mode).
    carol_overrides: Tuple[Tuple[str, object], ...] = ()
    #: GON ascent engine for CAROL-family cells:
    #: ``"exact"`` (default) is the autodiff oracle -- the bit-exact
    #: reference path; ``"fast"``/``"fast32"`` score ascents on the
    #: graph-free :mod:`repro.core.fastscore` kernel (float64 /
    #: float32), CI-gated to identical repair decisions.  In fleet
    #: mode the scoring service adopts the same backend.
    scorer_backend: str = "exact"
    #: Elastic-fleet liveness: a worker whose last frame (heartbeat
    #: ``Ping`` included) is older than this many seconds is declared
    #: lost and its leased cells re-queued.  0 disables the age check
    #: (reader EOFs and the queue-mode process watchdog still fire).
    heartbeat_timeout: float = 30.0
    #: Distinct failed attempts a cell gets before it is quarantined
    #: as *poisoned* -- reported, never retried again.  A poison cell
    #: that kept killing workers must not sink the whole campaign.
    cell_retry_budget: int = 3
    #: Pre-shared fleet auth token (TCP transports): workers send it
    #: in their ``Hello`` and the service rejects mismatches before
    #: ``Welcome``.  Empty disables the check.  Deliberately excluded
    #: from :meth:`CampaignResult.to_payload` -- secrets never enter
    #: record dumps.
    auth_token: str = ""
    #: Campaign record store backend (:mod:`repro.storage`):
    #: ``"memory"`` (default) keeps the historical in-process
    #: semantics -- nothing persists, nothing resumes; ``"sqlite"``
    #: persists every finished cell to ``store_path`` as it completes
    #: and *resumes* on re-run: cells already stored under this
    #: config's :func:`campaign_config_hash` are restored instead of
    #: re-executed (counted in ``fleet.cells_resumed``).  Execution
    #: detail, not grid identity: the store never changes a record.
    store: str = "memory"
    #: Database path for ``store="sqlite"`` (created on first use).
    store_path: str = ""

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("campaign needs at least one scenario")
        if not self.models:
            raise ValueError("campaign needs at least one model")
        if self.n_seeds < 1:
            raise ValueError("n_seeds must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.n_intervals is not None and self.n_intervals < 1:
            raise ValueError("n_intervals override must be >= 1")
        if self.trace_intervals < 1:
            raise ValueError("trace_intervals must be >= 1")
        if self.heartbeat_timeout < 0:
            raise ValueError("heartbeat_timeout must be >= 0 (0 disables)")
        if self.cell_retry_budget < 1:
            raise ValueError("cell_retry_budget must be >= 1")
        if self.mode not in ("process", "fleet"):
            raise ValueError(
                f"unknown campaign mode {self.mode!r}; "
                "expected 'process' or 'fleet'"
            )
        # One source of truth for backend names (storage is stdlib-only
        # and cheap to import, unlike the serving/nn stacks below).
        from ..storage import STORE_KINDS

        if self.store not in STORE_KINDS:
            raise ValueError(
                f"unknown campaign store {self.store!r}; "
                f"expected one of {STORE_KINDS}"
            )
        if self.store == "sqlite" and not self.store_path:
            raise ValueError(
                "store='sqlite' requires store_path (the database file)"
            )
        if self.store_path and self.store != "sqlite":
            raise ValueError(
                "store_path requires store='sqlite' (the memory store "
                "has nothing to point at)"
            )
        # One source of truth for backend names (lazy for symmetry with
        # the transport check below: core.scoring pulls the nn stack).
        from ..core.scoring import validate_backend

        validate_backend(self.scorer_backend)
        if self.transport not in ("queue", "tcp"):
            raise ValueError(
                f"unknown fleet transport {self.transport!r}; "
                "expected 'queue' or 'tcp'"
            )
        if self.transport == "tcp" and self.mode != "fleet":
            raise ValueError(
                "transport='tcp' requires mode='fleet' (only fleet "
                "campaigns route scoring through a service)"
            )
        if self.service_addr:
            if self.transport != "tcp":
                raise ValueError(
                    "service_addr requires transport='tcp' (queue "
                    "transports cannot reach a remote service)"
                )
            # One source of truth for what a valid address looks like
            # (imported lazily: serving pulls in the nn stack).
            from ..serving.transports import TransportError, parse_address

            try:
                parse_address(self.service_addr)
            except TransportError as error:
                raise ValueError(str(error)) from None
        known_fields = {f.name for f in fields(CAROLConfig)}
        for name, _value in self.carol_overrides:
            if name == "seed":
                # The CAROL seed is derived from each cell's run seed
                # (the cross-mode bit-identity contract); overriding it
                # campaign-wide would both break that contract and
                # collide with the seed= kwarg in cell_carol_config.
                raise ValueError(
                    "carol_overrides cannot override 'seed'; per-run "
                    "seeds derive from the campaign root SeedSequence"
                )
            if name not in known_fields:
                raise ValueError(
                    f"unknown CAROLConfig field {name!r} in "
                    f"carol_overrides; known: {sorted(known_fields)}"
                )
        if self.mode == "fleet" and not self.shared_assets:
            # Fleet consolidation requires one published weight set per
            # scenario; per-run training would give every run a private
            # model and nothing to share.
            object.__setattr__(self, "shared_assets", True)


#: The :class:`CampaignConfig` fields that define a campaign's *record
#: identity* -- everything that can change what a record contains.
#: Execution topology (workers/mode/transport/service_addr/timeouts/
#: retry budget/auth/store settings) is deliberately excluded: the
#: cross-mode bit-identity contract guarantees those fields cannot
#: change a record, so they must not invalidate a resume.  Adding a
#: field that affects record content without listing it here would
#: silently resume across genuinely different campaigns -- the
#: config-hash tests in ``tests/test_storage.py`` guard the split.
GRID_IDENTITY_FIELDS = (
    "scenarios",
    "models",
    "n_seeds",
    "seed",
    "n_intervals",
    "trace_intervals",
    "gon_hidden",
    "gon_layers",
    "gon_epochs",
    "shared_assets",
    "fleet_merge",
    "carol_overrides",
    "scorer_backend",
)


def campaign_grid_identity(config: "CampaignConfig") -> Dict[str, object]:
    """The JSON-safe grid-identity payload (the hashing surface).

    Model names are canonicalized first, so ``--models carol`` and
    ``--models CAROL`` hash (and therefore resume) identically.
    ``scorer_backend`` is included even though ``fast`` is CI-gated
    bit-identical to ``exact``: ``fast32`` is not, and a conservative
    hash beats silently mixing float32 records into an exact campaign.
    """
    return {
        "scenarios": list(config.scenarios),
        "models": [canonical_model_name(m) for m in config.models],
        "n_seeds": config.n_seeds,
        "seed": config.seed,
        "n_intervals": config.n_intervals,
        "trace_intervals": config.trace_intervals,
        "gon_hidden": config.gon_hidden,
        "gon_layers": config.gon_layers,
        "gon_epochs": config.gon_epochs,
        "shared_assets": config.shared_assets,
        "fleet_merge": config.fleet_merge,
        "carol_overrides": [
            [name, value] for name, value in config.carol_overrides
        ],
        "scorer_backend": config.scorer_backend,
    }


def campaign_config_hash(config: "CampaignConfig") -> str:
    """SHA-256 over the canonical grid identity: the campaign's name in
    every :mod:`repro.storage` store.

    Changing any :data:`GRID_IDENTITY_FIELDS` value changes the hash
    and thereby *invalidates resume on purpose*: records stored under
    the old hash describe a different grid, so a re-run must start
    fresh rather than restore them.
    """
    from ..storage import hash_payload

    return hash_payload(campaign_grid_identity(config))


@dataclass(frozen=True)
class RunTask:
    """One grid cell, self-contained and picklable for worker processes.

    ``spec`` is the resolved scenario, shipped with the task so worker
    processes never consult the parent's registry -- user-registered
    scenarios work even on spawn-based platforms whose workers only
    re-import the built-in catalog.  ``seed_sequence`` is this run's
    private ``SeedSequence`` child; the run seed is derived from it
    alone, so results do not depend on which worker executes the cell
    or in what order.
    """

    run_index: int
    scenario: str
    spec: ScenarioSpec
    model: str
    seed_index: int
    seed_sequence: np.random.SeedSequence
    n_intervals: Optional[int]
    trace_intervals: int
    gon_hidden: int
    gon_layers: int
    gon_epochs: int
    #: CAROLConfig field overrides for CAROL-family cells (see
    #: :attr:`CampaignConfig.carol_overrides`).
    carol_overrides: Tuple[Tuple[str, object], ...] = ()
    #: Ascent engine for this cell's scorer (see
    #: :attr:`CampaignConfig.scorer_backend`).
    scorer_backend: str = "exact"


@dataclass(frozen=True)
class RunRecord:
    """The deterministic outcome of one grid cell."""

    run_index: int
    scenario: str
    model: str
    seed_index: int
    #: The integer seed actually used for the run.
    seed: int
    metrics: Dict[str, float]
    #: Execution telemetry (scorer fallback/overlay counters, cache
    #: and fine-tune counts).  Deliberately excluded from :meth:`row`:
    #: it describes *how* the cell executed, not the deterministic
    #: outcome, so the cross-mode bit-identity contract ignores it
    #: (a fleet record legitimately reports overlay installs where its
    #: serial twin has none).
    diagnostics: Dict[str, int] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Tidy-format row: identity columns plus one column per metric."""
        row: Dict[str, object] = {
            "scenario": self.scenario,
            "model": self.model,
            "seed_index": self.seed_index,
            "seed": self.seed,
        }
        row.update(self.metrics)
        return row


def record_to_payload(record: RunRecord) -> Dict[str, object]:
    """One record as a JSON-safe dict, in ``--record-json`` row shape.

    Exactly the shape :meth:`CampaignResult.to_payload` emits per
    record (identity + flattened metric columns + ``run_index`` +
    ``diagnostics``), so stored cells, record dumps and
    ``benchmarks/compare_records.py`` all speak one format.
    """
    return {
        **record.row(),
        "run_index": record.run_index,
        "diagnostics": dict(record.diagnostics),
    }


def record_from_payload(payload: Dict[str, object]) -> RunRecord:
    """Rebuild a :class:`RunRecord` from its stored payload.

    The inverse of :func:`record_to_payload`; because JSON floats
    round-trip via ``repr``, the restored metrics are bit-identical to
    the originals (asserted by ``tests/test_storage.py``).  A payload
    missing a :data:`DETERMINISTIC_METRICS` column fails loudly -- it
    was stored by an incompatible (older/newer) record schema.
    """
    try:
        metrics = {
            key: float(payload[key]) for key in DETERMINISTIC_METRICS
        }
    except KeyError as error:
        raise ValueError(
            f"stored record lacks metric column {error.args[0]!r}; it was "
            "written by an incompatible record schema"
        ) from None
    diagnostics = {
        key: value if isinstance(value, str) else int(value)
        for key, value in (payload.get("diagnostics") or {}).items()
    }
    return RunRecord(
        run_index=int(payload["run_index"]),
        scenario=str(payload["scenario"]),
        model=str(payload["model"]),
        seed_index=int(payload["seed_index"]),
        seed=int(payload["seed"]),
        metrics=metrics,
        diagnostics=diagnostics,
    )


#: Entropy constant separating shared-asset seeds from the per-cell
#: ``SeedSequence.spawn`` stream (both descend from the campaign seed).
_ASSET_ENTROPY = 0x5CA1AB1E


def _asset_seed(config: CampaignConfig, scenario: str) -> int:
    """Deterministic offline-training seed for a scenario's shared assets."""
    index = config.scenarios.index(scenario)
    sequence = np.random.SeedSequence([config.seed, _ASSET_ENTROPY, index])
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def prepare_campaign_assets(
    config: CampaignConfig,
    tasks: Optional[Sequence[RunTask]] = None,
) -> Dict[str, TrainedAssets]:
    """Shared offline assets, one per scenario that needs them.

    Collects the DeFog trace and trains the GON *once* per scenario --
    the consolidation ``shared_assets`` buys over per-run training.
    The asset seed derives from the campaign root and the scenario's
    position, so the result is a pure function of the campaign config.
    Exposed separately so benches and tests can time campaign
    execution apart from offline training (pass the result to
    :func:`run_campaign` via ``prepared_assets``).
    """
    tasks = plan_tasks(config) if tasks is None else tasks
    needed = sorted(
        {task.scenario for task in tasks if task.model in _CAROL_FAMILY}
    )
    assets: Dict[str, TrainedAssets] = {}
    for scenario in needed:
        seed = _asset_seed(config, scenario)
        scenario_config = get_scenario(scenario).compile(seed=seed)
        assets[scenario] = prepare_assets(
            scenario_config,
            trace_intervals=config.trace_intervals,
            gon_hidden=config.gon_hidden,
            gon_layers=config.gon_layers,
            training=TrainingConfig(
                epochs=config.gon_epochs, batch_size=16,
                learning_rate=1e-3, generation_steps=20, seed=seed,
            ),
        )
    return assets


def cell_carol_config(task: RunTask, config) -> CAROLConfig:
    """The CAROL hyper-parameters of one grid cell.

    Seeded from the compiled run config and extended with the
    campaign's ``carol_overrides`` -- shared by the process and fleet
    builders so the override surface cannot drift between modes.
    """
    return CAROLConfig(seed=config.seed, **dict(task.carol_overrides))


def run_cell(task: RunTask, model_factory) -> RunRecord:
    """The shared tail of every execution mode for one grid cell.

    Seed derivation, scenario compilation, federation construction,
    the run itself and the record assembly live here exactly once:
    process and fleet execution differ only in the ``model_factory``
    (``(config, run_seed) -> ResilienceModel``), which is what keeps
    the cross-mode bit-identity contract honest by construction.
    """
    spec = task.spec
    run_seed = int(task.seed_sequence.generate_state(1, dtype=np.uint32)[0])
    config = spec.compile(seed=run_seed, n_intervals=task.n_intervals)
    _CELLS_STARTED.inc()
    with _CELL_SPAN.time():
        model = model_factory(config, run_seed)
        federation = EdgeFederation(config, topology=build_topology(spec))
        result = run_experiment(
            model, config, federation=federation, edge_slowdown=0.0
        )
    summary = result.summary()
    # CAROL-family models expose their scorer/cache counters (plus the
    # decision_digest hex string); pure heuristics have no execution
    # telemetry to report.
    diagnostics_source = getattr(model, "scorer_diagnostics", None)
    diagnostics = (
        {
            key: value if isinstance(value, str) else int(value)
            for key, value in diagnostics_source().items()
        }
        if callable(diagnostics_source)
        else {}
    )
    # Fold the model's per-instance registries (carol.* / scorer.*)
    # into the process-wide view so campaign snapshots see them.  Pure
    # observation: the record below is already assembled from the
    # deterministic summary, so telemetry cannot feed back into it.
    if _telemetry.is_enabled():
        snapshot_source = getattr(model, "telemetry_snapshot", None)
        if callable(snapshot_source):
            _telemetry.get_registry().merge_snapshot(snapshot_source())
    _CELLS_COMPLETED.inc()
    return RunRecord(
        run_index=task.run_index,
        scenario=task.scenario,
        model=task.model,
        seed_index=task.seed_index,
        seed=run_seed,
        metrics={key: float(summary[key]) for key in DETERMINISTIC_METRICS},
        diagnostics=diagnostics,
    )


def _execute_run(
    task: RunTask, assets: Optional[TrainedAssets] = None
) -> RunRecord:
    """Run one grid cell end to end (executed inside worker processes).

    ``assets`` carries the scenario's shared offline assets when the
    campaign runs with ``shared_assets``; otherwise CAROL-family cells
    train their own from the run seed (the classic per-run path).
    """

    def build(config, run_seed):
        cell_assets = assets
        if cell_assets is None and task.model in _CAROL_FAMILY:
            cell_assets = prepare_assets(
                config,
                trace_intervals=task.trace_intervals,
                gon_hidden=task.gon_hidden,
                gon_layers=task.gon_layers,
                training=TrainingConfig(
                    epochs=task.gon_epochs, batch_size=16,
                    learning_rate=1e-3, generation_steps=20, seed=run_seed,
                ),
            )
        return build_model(
            task.model, cell_assets, config,
            carol_config=cell_carol_config(task, config),
            scorer_backend=task.scorer_backend,
        )

    return run_cell(task, build)


def _execute_run_telemetry(
    task: RunTask, assets: Optional[TrainedAssets] = None
) -> Tuple[RunRecord, dict]:
    """:func:`_execute_run` plus this cell's process-registry delta.

    The delta (not a raw snapshot) is what crosses the process
    boundary: pool workers persist across cells and fork-inherited
    registries carry parent state, so only the difference attributable
    to this cell merges into the campaign view without double counting.
    """
    before = _telemetry.snapshot()
    record = _execute_run(task, assets)
    return record, _telemetry.delta(before)


def plan_tasks(config: CampaignConfig) -> List[RunTask]:
    """Flatten the grid into tasks with independent spawned seeds.

    The root ``SeedSequence`` spawns one child per cell in a fixed
    (scenario, model, seed_index) order, so the plan -- and therefore
    every run seed -- is a pure function of the campaign config.
    """
    # Resolve names up front: fails fast on typos, and freezes the
    # specs into the tasks (worker registries may lack user scenarios).
    specs = {name: get_scenario(name) for name in config.scenarios}
    models = tuple(canonical_model_name(m) for m in config.models)

    cells = [
        (scenario, model, seed_index)
        for scenario in config.scenarios
        for model in models
        for seed_index in range(config.n_seeds)
    ]
    children = np.random.SeedSequence(config.seed).spawn(len(cells))
    return [
        RunTask(
            run_index=index,
            scenario=scenario,
            spec=specs[scenario],
            model=model,
            seed_index=seed_index,
            seed_sequence=children[index],
            n_intervals=config.n_intervals,
            trace_intervals=config.trace_intervals,
            gon_hidden=config.gon_hidden,
            gon_layers=config.gon_layers,
            gon_epochs=config.gon_epochs,
            carol_overrides=config.carol_overrides,
            scorer_backend=config.scorer_backend,
        )
        for index, (scenario, model, seed_index) in enumerate(cells)
    ]


@dataclass
class CampaignResult:
    """All records of a campaign plus tidy/aggregate views."""

    config: CampaignConfig
    records: List[RunRecord] = field(default_factory=list)
    #: Merged telemetry snapshot covering every execution mode: the
    #: per-cell registry deltas (serial / process pool) or the fleet's
    #: worker + service registries, folded into one campaign view with
    #: :func:`repro.telemetry.merge_snapshots`.  Observability only --
    #: wall-clock spans live here and never in the records, so the
    #: bit-identity contract is untouched.
    telemetry: Dict[str, dict] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        """Tidy table: one row per run, identity + metric columns."""
        return [record.row() for record in self.records]

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable dump: grid spec + per-run records.

        What ``python -m repro campaign --record-json`` writes and CI
        uploads as an artifact; records carry both the deterministic
        metrics (the bit-identity surface) and the execution
        diagnostics (fallback/overlay/cache counters).
        """
        return {
            "config": {
                "scenarios": list(self.config.scenarios),
                "models": [canonical_model_name(m) for m in self.config.models],
                "n_seeds": self.config.n_seeds,
                "workers": self.config.workers,
                "seed": self.config.seed,
                "n_intervals": self.config.n_intervals,
                "mode": self.config.mode,
                "transport": self.config.transport,
                "service_addr": self.config.service_addr,
                "shared_assets": self.config.shared_assets,
                "fleet_merge": self.config.fleet_merge,
                "scorer_backend": self.config.scorer_backend,
                "heartbeat_timeout": self.config.heartbeat_timeout,
                "cell_retry_budget": self.config.cell_retry_budget,
                # auth_token is intentionally absent: record dumps are
                # shared artifacts and must never carry credentials.
                "carol_overrides": [list(p) for p in self.config.carol_overrides],
                "store": self.config.store,
                "store_path": self.config.store_path,
                "config_hash": campaign_config_hash(self.config),
            },
            "records": [
                {
                    **record.row(),
                    "run_index": record.run_index,
                    "diagnostics": dict(record.diagnostics),
                }
                for record in self.records
            ],
            "telemetry": self.telemetry,
        }

    def mean_metrics(self, scenario: str, model: str) -> Dict[str, float]:
        """Seed-averaged deterministic metrics of one (scenario, model)
        cell -- the fuzzer's scoring surface.  Raises ``KeyError`` when
        the cell produced no records."""
        stats = self.aggregate().get((scenario, canonical_model_name(model)))
        if stats is None:
            stats = self.aggregate().get((scenario, model))
        if stats is None:
            raise KeyError(
                f"no records for cell ({scenario!r}, {model!r})"
            )
        return {metric: mean for metric, (mean, _std) in stats.items()}

    def aggregate(self) -> Dict[Tuple[str, str], Dict[str, Tuple[float, float]]]:
        """Per (scenario, model) cell: metric -> (mean, std) over seeds."""
        grouped: Dict[Tuple[str, str], List[RunRecord]] = {}
        for record in self.records:
            grouped.setdefault((record.scenario, record.model), []).append(record)
        summary: Dict[Tuple[str, str], Dict[str, Tuple[float, float]]] = {}
        for key, group in grouped.items():
            summary[key] = {
                metric: (
                    float(np.mean([r.metrics[metric] for r in group])),
                    float(np.std([r.metrics[metric] for r in group])),
                )
                for metric in DETERMINISTIC_METRICS
            }
        return summary

    def format_summary(self) -> str:
        """ASCII summary table, one row per (scenario, model) cell."""
        aggregate = self.aggregate()
        n_by_cell: Dict[Tuple[str, str], int] = {}
        for record in self.records:
            key = (record.scenario, record.model)
            n_by_cell[key] = n_by_cell.get(key, 0) + 1
        rows = []
        for (scenario, model) in sorted(aggregate):
            stats = aggregate[(scenario, model)]
            rows.append((
                scenario,
                model,
                n_by_cell[(scenario, model)],
                _mean_std(stats["energy_kwh"]),
                _mean_std(stats["response_time_s"]),
                _mean_std(stats["slo_violation_rate"]),
                _mean_std(stats["downtime_s"]),
            ))
        return format_table(
            headers=(
                "scenario", "model", "runs", "energy (kWh)",
                "response (s)", "slo rate", "downtime (s)",
            ),
            rows=rows,
            title=f"-- campaign summary ({len(self.records)} runs) --",
        )


def _mean_std(stat: Tuple[float, float]) -> str:
    mean, std = stat
    return f"{mean:.4g} ±{std:.2g}"


def run_campaign(
    config: CampaignConfig,
    prepared_assets: Optional[Dict[str, TrainedAssets]] = None,
) -> CampaignResult:
    """Execute the full grid with the configured backend.

    ``prepared_assets`` short-circuits :func:`prepare_campaign_assets`
    when the campaign runs with ``shared_assets`` -- benches and tests
    use it to reuse one offline-training pass across several timed
    executions of the same grid.

    Every campaign runs against a :class:`repro.storage.CampaignStore`
    (``config.store``).  Cells already stored under this campaign's
    config hash are *restored* instead of re-executed -- sound because
    records are bit-identical across execution modes, so the stored
    record is byte-for-byte the record a re-run would produce.  Fresh
    records are persisted as they finish (serial and pool modes per
    record, fleet mode from the record collector as workers stream
    results), so a SIGKILLed campaign resumes from its last completed
    cell.  The default ``memory`` store starts empty in every process
    and therefore preserves the historical run-everything semantics
    exactly.  Restored-cell counts land in the ``fleet.cells_resumed``
    telemetry counter.
    """
    from ..storage import open_store

    tasks = plan_tasks(config)
    config_hash = campaign_config_hash(config)
    store = open_store(config.store, config.store_path)
    try:
        store.register_campaign(config_hash, campaign_grid_identity(config))
        stored = {
            (str(p["scenario"]), str(p["model"]), int(p["seed_index"])): p
            for p in store.records(config_hash)
        }
        todo = [
            task
            for task in tasks
            if (task.scenario, task.model, task.seed_index) not in stored
        ]
        restored = [
            record_from_payload(stored[(t.scenario, t.model, t.seed_index)])
            for t in tasks
            if (t.scenario, t.model, t.seed_index) in stored
        ]
        # Count the resumed cells *now* and capture just that increment
        # as its own delta: fleet's internal base snapshot and the
        # serial/pool per-cell deltas are all taken after this point,
        # so merging the small delta at the end is the only way the
        # counter reaches the campaign view without double counting.
        resume_delta: dict = {}
        if restored:
            resume_base = _telemetry.snapshot()
            _CELLS_RESUMED.inc(len(restored))
            resume_delta = _telemetry.delta(resume_base)

        def persist(record: RunRecord) -> None:
            store.put_record(config_hash, record_to_payload(record))

        shared: Optional[Dict[str, TrainedAssets]] = None
        if config.shared_assets:
            if config.mode == "fleet" and config.service_addr:
                # The external service already trained and published the
                # assets; workers fetch them over the socket instead.
                shared = {}
            else:
                shared = (
                    prepared_assets
                    if prepared_assets is not None
                    else prepare_campaign_assets(config, todo)
                )

        if config.mode == "fleet":
            from .fleet import run_fleet_campaign

            telemetry_sink: List[dict] = []
            fresh = run_fleet_campaign(
                config,
                todo,
                shared or {},
                telemetry_sink=telemetry_sink,
                record_sink=persist,
            )
            campaign_telemetry = (
                telemetry_sink[0] if telemetry_sink else _telemetry.snapshot()
            )
        else:
            per_task = [
                shared.get(task.scenario)
                if shared is not None and task.model in _CAROL_FAMILY
                else None
                for task in todo
            ]
            outcomes: List[Tuple[RunRecord, dict]] = []
            if config.workers == 1:
                for task, assets in zip(todo, per_task):
                    outcome = _execute_run_telemetry(task, assets)
                    persist(outcome[0])
                    outcomes.append(outcome)
            else:
                with ProcessPoolExecutor(max_workers=config.workers) as executor:
                    # map yields in submission order as cells finish;
                    # persisting inside the loop keeps the store
                    # current while later cells still run.
                    for outcome in executor.map(
                        _execute_run_telemetry, todo, per_task, chunksize=1
                    ):
                        persist(outcome[0])
                        outcomes.append(outcome)
            fresh = [record for record, _delta in outcomes]
            campaign_telemetry = _telemetry.merge_snapshots(
                *(delta for _record, delta in outcomes)
            )
        if resume_delta:
            campaign_telemetry = _telemetry.merge_snapshots(
                campaign_telemetry, resume_delta
            )
        store.merge_telemetry(config_hash, campaign_telemetry)
        records = sorted(
            restored + list(fresh), key=lambda record: record.run_index
        )
    finally:
        store.close()
    return CampaignResult(
        config=config, records=records, telemetry=campaign_telemetry
    )


def ci_campaign_config(workers: int = 2) -> CampaignConfig:
    """The smoke-test grid CI runs on every push: tiny but end-to-end.

    Two scenarios x {one heuristic model, the §VI proactive scheme} x
    one seed at five intervals with a midget shared-asset GON --
    seconds of work, yet it exercises the registry, the compiler, the
    parallel executor, offline asset sharing, the proactive decision
    loop and the aggregation.
    """
    return CampaignConfig(
        scenarios=("paper-default", "fault-free"),
        models=("DYVERSE", "CAROL-Proactive"),
        n_seeds=1,
        workers=workers,
        n_intervals=5,
        trace_intervals=12,
        gon_hidden=8,
        gon_layers=2,
        gon_epochs=2,
        shared_assets=True,
    )


def fleet_ci_campaign_config(workers: int = 2) -> CampaignConfig:
    """The fleet-mode smoke grid: a tiny CAROL + ProactiveCAROL
    campaign through the shared-memory assets and the batched scoring
    service.

    One scenario x {CAROL, CAROL-Proactive} x two seeds at three
    intervals with a midget GON -- seconds of work, yet it exercises
    asset publication, the worker/scorer queues, bucketed batching,
    proactive fleet routing and record collection.
    """
    return CampaignConfig(
        scenarios=("paper-default",),
        models=("CAROL", "CAROL-Proactive"),
        n_seeds=2,
        workers=workers,
        seed=1,
        n_intervals=3,
        trace_intervals=12,
        gon_hidden=8,
        gon_layers=2,
        gon_epochs=2,
        mode="fleet",
    )
