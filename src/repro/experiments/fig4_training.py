"""Fig. 4 -- GON training curves (§IV-E).

Collect the DeFog trace, train the GON with Algorithm 1 and report the
per-epoch loss, test-set MSE of generated metrics and mean confidence
score -- the three series of the paper's training plot (loss falls,
MSE falls, confidence rises; convergence around 30 epochs with early
stopping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import ExperimentConfig, ci_scale
from ..core import TrainingConfig, TrainingHistory
from .calibration import prepare_assets
from .report import format_table, sparkline

__all__ = ["Fig4Config", "run_fig4", "format_fig4"]


@dataclass
class Fig4Config:
    base: ExperimentConfig = field(default_factory=ci_scale)
    trace_intervals: int = 150
    gon_hidden: int = 48
    gon_layers: int = 3
    training: Optional[TrainingConfig] = None


def run_fig4(config: Optional[Fig4Config] = None) -> TrainingHistory:
    config = config or Fig4Config()
    training = config.training or TrainingConfig(
        epochs=12, batch_size=16, learning_rate=1e-3, seed=config.base.seed
    )
    assets = prepare_assets(
        config.base,
        trace_intervals=config.trace_intervals,
        gon_hidden=config.gon_hidden,
        gon_layers=config.gon_layers,
        training=training,
    )
    return assets.training_history


def format_fig4(history: TrainingHistory) -> str:
    table = format_table(
        headers=("epoch", "loss", "MSE", "confidence"),
        rows=history.rows(),
        title="-- Fig. 4: GON training curves --",
    )
    lines = [
        table,
        f"loss      : {sparkline(history.losses)}",
        f"mse       : {sparkline(history.mses)}",
        f"confidence: {sparkline(history.confidences)}",
        (
            f"stopped at epoch {history.stopped_epoch} "
            f"in {history.wall_seconds:.1f}s"
        ),
    ]
    return "\n".join(lines)
