"""Assert two ``campaign --record-json`` dumps agree record-for-record.

CI runs the fleet smoke twice -- once over the queue transport, once
over TCP sockets against a separately served scoring service -- and
this check pins the transport contract in the pipeline itself: the
deterministic record surface (scenario, model, seeds, every metric)
must be **bit-identical** across transports.  Execution observability
legitimately differs between modes -- diagnostics counters (overlay/
fallback/cache) *and* the merged telemetry snapshot, which carries
wall-clock spans that differ on every run -- so both are explicitly
stripped before comparison, exactly as ``RunRecord.row()`` excludes
them from the deterministic surface.

``--decisions`` additionally asserts *decision parity*: each CAROL-
family record's ``diagnostics["decision_digest"]`` (the rolling hash
over every repair choice and POT gate outcome) must match record-for-
record.  This is the gate the fast scorer backends are held to -- a
``--scorer-backend fast`` dump must make bit-identical records *and*
identical decisions versus the exact-oracle dump.

Usage::

    python benchmarks/compare_records.py A.json B.json [--decisions]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

#: Per-record keys describing *how* a cell executed, not its outcome:
#: never part of the bit-identity surface.
EXECUTION_ONLY_KEYS = ("diagnostics", "telemetry")


def record_rows(path: str, decisions: bool = False) -> List[Dict[str, object]]:
    with open(path) as source:
        payload = json.load(source)
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        raise SystemExit(f"{path}: no records in payload")
    rows = []
    for record in records:
        row = {
            key: value
            for key, value in record.items()
            if key not in EXECUTION_ONLY_KEYS
        }
        if decisions:
            # Lifted out of the execution-only diagnostics on demand:
            # the digest is deterministic for a given decision stream,
            # so it *is* comparable across transports and backends.
            diagnostics = record.get("diagnostics") or {}
            row["decision_digest"] = diagnostics.get("decision_digest")
        rows.append(row)
    return sorted(rows, key=lambda row: row.get("run_index", 0))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("left", help="first --record-json dump")
    parser.add_argument("right", help="second --record-json dump")
    parser.add_argument(
        "--decisions",
        action="store_true",
        help="additionally require matching per-record decision digests "
        "(scorer-backend decision-parity gate)",
    )
    args = parser.parse_args(argv)

    left_rows = record_rows(args.left, decisions=args.decisions)
    right_rows = record_rows(args.right, decisions=args.decisions)
    if len(left_rows) != len(right_rows):
        print(
            f"FAIL: {args.left} has {len(left_rows)} records, "
            f"{args.right} has {len(right_rows)}"
        )
        return 1
    for index, (left, right) in enumerate(zip(left_rows, right_rows)):
        if left != right:
            diff = sorted(key for key in set(left) | set(right) if left.get(key) != right.get(key))
            print(f"FAIL: record {index} differs on {diff}:")
            for key in diff:
                print(f"  {key}: {left.get(key)!r} != {right.get(key)!r}")
            return 1
    what = "records + decision digests" if args.decisions else "records"
    print(
        f"OK: {len(left_rows)} {what} bit-identical "
        f"between {args.left} and {args.right}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
