"""Assert two ``campaign --record-json`` dumps agree record-for-record.

CI runs the fleet smoke twice -- once over the queue transport, once
over TCP sockets against a separately served scoring service -- and
this check pins the transport contract in the pipeline itself: the
deterministic record surface (scenario, model, seeds, every metric)
must be **bit-identical** across transports.  Execution observability
legitimately differs between modes -- diagnostics counters (overlay/
fallback/cache) *and* the merged telemetry snapshot, which carries
wall-clock spans that differ on every run -- so both are explicitly
stripped before comparison, exactly as ``RunRecord.row()`` excludes
them from the deterministic surface.

``--decisions`` additionally asserts *decision parity*: each CAROL-
family record's ``diagnostics["decision_digest"]`` (the rolling hash
over every repair choice and POT gate outcome) must match record-for-
record.  This is the gate the fast scorer backends are held to -- a
``--scorer-backend fast`` dump must make bit-identical records *and*
identical decisions versus the exact-oracle dump.

Either side may also be a ``campaign --store sqlite`` database
(sniffed by the SQLite magic bytes) -- the store's records are read
directly, so the CI resume gate compares an interrupted-then-resumed
campaign's store against a fresh serial dump with no export step.
Deliberately stdlib-only (``json`` + ``sqlite3``, no ``repro``
import): CI calls this without ``PYTHONPATH=src``, and so can any
external tooling.  ``tests/test_storage.py`` pins this reader against
``repro.storage``'s own export, so the two cannot drift.

Usage::

    python benchmarks/compare_records.py A.json B.db [--decisions]
        [--campaign HASHPREFIX]
"""

from __future__ import annotations

import argparse
import json
import sqlite3
import sys
from typing import Dict, List

#: Per-record keys describing *how* a cell executed, not its outcome:
#: never part of the bit-identity surface.
EXECUTION_ONLY_KEYS = ("diagnostics", "telemetry")

#: First 16 bytes of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"


def is_sqlite_file(path: str) -> bool:
    try:
        with open(path, "rb") as probe:
            return probe.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False


def _store_payload(path: str, campaign: str = "") -> Dict[str, object]:
    """Read one campaign out of a ``repro.storage`` sqlite store.

    Mirrors ``CampaignStore.export_payload`` with raw sqlite3 so the
    benchmark needs no ``repro`` on the path; the schema (``campaigns``
    / ``cells`` keyed by the canonical cell id) is pinned by the parity
    test in ``tests/test_storage.py``.
    """
    conn = sqlite3.connect(path)
    try:
        hashes = [
            row[0]
            for row in conn.execute(
                "SELECT config_hash FROM campaigns ORDER BY config_hash"
            )
        ]
        matches = [h for h in hashes if h.startswith(campaign)]
        if len(matches) != 1:
            raise SystemExit(
                f"{path}: campaign prefix {campaign!r} matches "
                f"{len(matches)} of {len(hashes)} stored campaigns: "
                + ", ".join(h[:12] for h in hashes)
            )
        config_hash = matches[0]
        grid_json, telemetry_json = conn.execute(
            "SELECT grid_json, telemetry_json FROM campaigns "
            "WHERE config_hash=?",
            (config_hash,),
        ).fetchone()
        records = [
            json.loads(row[0])
            for row in conn.execute(
                "SELECT record_json FROM cells WHERE config_hash=? "
                "ORDER BY run_index",
                (config_hash,),
            )
        ]
    finally:
        conn.close()
    return {
        "config": dict(json.loads(grid_json), config_hash=config_hash),
        "records": records,
        "telemetry": json.loads(telemetry_json),
    }


def load_payload(path: str, campaign: str = "") -> Dict[str, object]:
    """A records payload from either a JSON dump or a store database."""
    if is_sqlite_file(path):
        return _store_payload(path, campaign)
    with open(path) as source:
        return json.load(source)


def record_rows(
    path: str, decisions: bool = False, campaign: str = ""
) -> List[Dict[str, object]]:
    payload = load_payload(path, campaign)
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        raise SystemExit(f"{path}: no records in payload")
    rows = []
    for record in records:
        row = {
            key: value
            for key, value in record.items()
            if key not in EXECUTION_ONLY_KEYS
        }
        if decisions:
            # Lifted out of the execution-only diagnostics on demand:
            # the digest is deterministic for a given decision stream,
            # so it *is* comparable across transports and backends.
            diagnostics = record.get("diagnostics") or {}
            row["decision_digest"] = diagnostics.get("decision_digest")
        rows.append(row)
    return sorted(rows, key=lambda row: row.get("run_index", 0))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("left", help="first --record-json dump or sqlite store")
    parser.add_argument("right", help="second --record-json dump or sqlite store")
    parser.add_argument(
        "--decisions",
        action="store_true",
        help="additionally require matching per-record decision digests "
        "(scorer-backend decision-parity gate)",
    )
    parser.add_argument(
        "--campaign",
        type=str,
        default="",
        help="campaign config-hash prefix (store files holding several "
        "campaigns)",
    )
    args = parser.parse_args(argv)

    left_rows = record_rows(args.left, decisions=args.decisions,
                            campaign=args.campaign)
    right_rows = record_rows(args.right, decisions=args.decisions,
                             campaign=args.campaign)
    if len(left_rows) != len(right_rows):
        print(
            f"FAIL: {args.left} has {len(left_rows)} records, "
            f"{args.right} has {len(right_rows)}"
        )
        return 1
    for index, (left, right) in enumerate(zip(left_rows, right_rows)):
        if left != right:
            diff = sorted(key for key in set(left) | set(right) if left.get(key) != right.get(key))
            print(f"FAIL: record {index} differs on {diff}:")
            for key in diff:
                print(f"  {key}: {left.get(key)!r} != {right.get(key)!r}")
            return 1
    what = "records + decision digests" if args.decisions else "records"
    print(
        f"OK: {len(left_rows)} {what} bit-identical "
        f"between {args.left} and {args.right}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
