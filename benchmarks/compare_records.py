"""Assert two ``campaign --record-json`` dumps agree record-for-record.

CI runs the fleet smoke twice -- once over the queue transport, once
over TCP sockets against a separately served scoring service -- and
this check pins the transport contract in the pipeline itself: the
deterministic record surface (scenario, model, seeds, every metric)
must be **bit-identical** across transports.  Execution observability
legitimately differs between modes -- diagnostics counters (overlay/
fallback/cache) *and* the merged telemetry snapshot, which carries
wall-clock spans that differ on every run -- so both are explicitly
stripped before comparison, exactly as ``RunRecord.row()`` excludes
them from the deterministic surface.

Usage::

    python benchmarks/compare_records.py A.json B.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

#: Per-record keys describing *how* a cell executed, not its outcome:
#: never part of the bit-identity surface.
EXECUTION_ONLY_KEYS = ("diagnostics", "telemetry")


def record_rows(path: str) -> List[Dict[str, object]]:
    with open(path) as source:
        payload = json.load(source)
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        raise SystemExit(f"{path}: no records in payload")
    rows = [
        {
            key: value
            for key, value in record.items()
            if key not in EXECUTION_ONLY_KEYS
        }
        for record in records
    ]
    return sorted(rows, key=lambda row: row.get("run_index", 0))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("left", help="first --record-json dump")
    parser.add_argument("right", help="second --record-json dump")
    args = parser.parse_args(argv)

    left_rows = record_rows(args.left)
    right_rows = record_rows(args.right)
    if len(left_rows) != len(right_rows):
        print(
            f"FAIL: {args.left} has {len(left_rows)} records, "
            f"{args.right} has {len(right_rows)}"
        )
        return 1
    for index, (left, right) in enumerate(zip(left_rows, right_rows)):
        if left != right:
            diff = sorted(key for key in set(left) | set(right) if left.get(key) != right.get(key))
            print(f"FAIL: record {index} differs on {diff}:")
            for key in diff:
                print(f"  {key}: {left.get(key)!r} != {right.get(key)!r}")
            return 1
    print(f"OK: {len(left_rows)} records bit-identical between {args.left} and {args.right}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
