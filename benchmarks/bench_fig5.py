"""Fig. 5 bench -- comparison with baselines and ablations (§V-C/D).

Runs CAROL, all seven baselines and the four ablations on identical
federation/workload/fault seeds and prints the six panels (absolute
values plus performance relative to CAROL, like the paper's dual axes).

Shape expectations tracked against the paper (see EXPERIMENTS.md):
CAROL leads the QoS metrics, its confidence-gated fine-tuning beats the
Always-Fine-Tune ablation and the per-interval tuners on overhead, and
the GAN ablation pays the memory premium.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ABLATION_NAMES,
    BASELINE_NAMES,
    Fig5Config,
    format_results,
    headline_deltas,
    run_fig5,
)
from repro.experiments.report import format_relative_table

from conftest import bench_config

_RESULTS_CACHE = {}


@pytest.fixture(scope="module")
def fig5_results(assets):
    if "results" not in _RESULTS_CACHE:
        config = Fig5Config(
            base=bench_config(n_intervals=40, seed=5),
            include_ablations=True,
        )
        _RESULTS_CACHE["results"] = run_fig5(config, assets=assets)
    return _RESULTS_CACHE["results"]


def _panel(fig5_results, key, label, benchmark=None):
    def extract():
        return {name: result.summary()[key] for name, result in fig5_results.items()}

    values = benchmark(extract) if benchmark is not None else extract()
    print()
    print(format_relative_table(label, values, reference="CAROL"))
    return values


def test_fig5_run_all_models(benchmark, assets):
    """The headline run: every scheme over the same 40 intervals."""
    def run():
        if "results" not in _RESULTS_CACHE:
            config = Fig5Config(
                base=bench_config(n_intervals=40, seed=5),
                include_ablations=True,
            )
            _RESULTS_CACHE["results"] = run_fig5(config, assets=assets)
        return _RESULTS_CACHE["results"]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert set(results) == {"CAROL", *BASELINE_NAMES, *ABLATION_NAMES}
    print()
    print(format_results(results))
    deltas = headline_deltas(results)
    print(
        "\nheadline deltas vs best baseline (paper: energy -16.45%, "
        "SLO -17.01%, overhead -35.62%):"
    )
    for key, value in deltas.items():
        print(f"  {key}: {value:+.1f}%")


def test_fig5a_energy(benchmark, fig5_results):
    values = _panel(fig5_results, "energy_kwh", "Fig. 5(a) energy consumption (kWh)", benchmark)
    baselines = [values[n] for n in BASELINE_NAMES]
    # CAROL at or below the baseline median (paper: CAROL minimum).
    assert values["CAROL"] <= np.median(baselines) * 1.05


def test_fig5b_response_time(benchmark, fig5_results):
    values = _panel(fig5_results, "response_time_s", "Fig. 5(b) response time (s)", benchmark)
    baselines = [values[n] for n in BASELINE_NAMES]
    assert values["CAROL"] <= np.median(baselines) * 1.10


def test_fig5c_slo_violations(benchmark, fig5_results):
    values = _panel(
        fig5_results,
        "slo_violation_rate",
        "Fig. 5(c) SLO violation rate",
        benchmark,
    )
    baselines = [values[n] for n in BASELINE_NAMES]
    assert values["CAROL"] <= np.median(baselines) * 1.10
    for name, value in values.items():
        assert 0.0 <= value <= 1.0


def test_fig5d_decision_time(benchmark, fig5_results):
    values = _panel(fig5_results, "decision_time_s", "Fig. 5(d) decision time (s)", benchmark)
    # Heuristics decide near-instantly; CAROL pays for its tabu search
    # but stays within interactive bounds (paper: ~1.5 s on Pi-class
    # hardware; our numpy/x86 substrate is faster in absolute terms).
    assert values["DYVERSE"] <= values["CAROL"]
    assert values["CAROL"] < 5.0


def test_fig5e_memory(benchmark, fig5_results):
    values = _panel(fig5_results, "memory_percent", "Fig. 5(e) memory consumption (%)", benchmark)
    # The GAN ablation pays the generator premium over the GON (the
    # paper's 5% -> 30% jump), and ELBS's exemplar-storing PNN is the
    # heaviest baseline.
    assert values["CAROL-WithGAN"] > values["CAROL"]
    assert values["ELBS"] > values["DYVERSE"]


def test_fig5f_fine_tune_overhead(benchmark, fig5_results):
    values = _panel(
        fig5_results,
        "fine_tune_overhead_s",
        "Fig. 5(f) fine-tuning overhead (s)",
        benchmark,
    )
    # The parsimony claim: confidence-gated fine-tuning undercuts the
    # Always-Fine-Tune ablation and the per-interval tuners.
    assert values["CAROL"] < values["CAROL-AlwaysFT"]
    per_interval_tuners = [
        values["ELBS"],
        values["FRAS"],
        values["TopoMAD"],
        values["StepGAN"],
        values["CAROL-FFSurrogate"],
    ]
    assert values["CAROL"] < np.median(per_interval_tuners)


def test_fig5_ablations(benchmark, fig5_results):
    """The §V-D ablation story in one table."""
    keys = (
        "energy_kwh",
        "slo_violation_rate",
        "fine_tune_overhead_s",
        "memory_percent",
        "decision_time_s",
    )
    benchmark(lambda: [fig5_results[n].summary() for n in ABLATION_NAMES])
    print()
    for key in keys:
        values = {name: fig5_results[name].summary()[key] for name in ("CAROL", *ABLATION_NAMES)}
        print(format_relative_table(f"ablations: {key}", values, reference="CAROL"))
        print()
    # Never-Fine-Tune pays zero overhead by construction.
    never = fig5_results["CAROL-NeverFT"].summary()["fine_tune_overhead_s"]
    always = fig5_results["CAROL-AlwaysFT"].summary()["fine_tune_overhead_s"]
    assert never < always
