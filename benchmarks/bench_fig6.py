"""Fig. 6 bench -- sensitivity analysis (§V-E).

Three sweeps printing the paper's four series (MSE, decision time,
energy, SLO violation rate): (a) the eq.-1 step size gamma, (b) the
GON depth / memory footprint, (c) the tabu list size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    Fig6Config,
    format_sweep,
    run_learning_rate_sweep,
    run_memory_sweep,
    run_tabu_sweep,
)

from conftest import bench_config


@pytest.fixture(scope="module")
def fig6_config():
    return Fig6Config(
        base=bench_config(seed=6),
        eval_intervals=12,
        trace_intervals=120,
        gon_hidden=32,
        gon_layers=2,
    )


def test_fig6a_learning_rate(benchmark, assets, fig6_config):
    points = benchmark.pedantic(
        lambda: run_learning_rate_sweep(fig6_config, assets=assets),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep("-- Fig. 6(a): learning-rate sensitivity --", "gamma", points))
    assert len(points) == 5
    # U-shape: the extremes do not beat the best interior gamma on MSE.
    mses = [p.mse for p in points]
    best = int(np.argmin(mses))
    assert 0 < best < len(points) - 1 or mses[best] <= min(mses[0], mses[-1])


def test_fig6b_memory(benchmark, fig6_config):
    points = benchmark.pedantic(lambda: run_memory_sweep(fig6_config), rounds=1, iterations=1)
    print()
    print(format_sweep("-- Fig. 6(b): memory-footprint sensitivity --", "layers", points))
    # Footprint grows monotonically with depth (the paper's x-axis).
    footprints = [p.memory_mb for p in points]
    assert all(b > a for a, b in zip(footprints, footprints[1:]))


def test_fig6c_tabu_list(benchmark, assets, fig6_config):
    points = benchmark.pedantic(
        lambda: run_tabu_sweep(fig6_config, assets=assets),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep("-- Fig. 6(c): tabu-list-size sensitivity --", "tabu size", points))
    assert len(points) == 5
    for point in points:
        assert point.energy_kwh > 0
