"""Fig. 2 bench -- confidence scores and POT threshold over time.

Runs CAROL on the fault-injected AIoT federation and prints the
confidence stream, the dynamic POT threshold and the fine-tune bands
(the paper's shaded intervals), plus the parsimony statistic: the
fraction of intervals that actually triggered fine-tuning.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import Fig2Config, format_fig2, run_fig2

from conftest import bench_config


def test_fig2_confidence_and_pot_threshold(benchmark, assets):
    config = Fig2Config(base=bench_config(seed=2), n_intervals=60)

    result = benchmark.pedantic(lambda: run_fig2(config, assets=assets), rounds=1, iterations=1)

    print()
    print(format_fig2(result))

    assert len(result.confidences) == 60
    assert all(0.0 <= c <= 1.0 for c in result.confidences)
    # POT calibrates and produces finite thresholds after warm-up.
    finite = [t for t in result.thresholds if np.isfinite(t)]
    assert finite, "POT never calibrated"
    # Parsimony: fine-tuning happens, but only on a minority of
    # intervals (the paper's Fig. 2 shows sparse bands).
    assert result.n_fine_tunes < 0.5 * len(result.fine_tuned)
