"""Table I + Fig. 1 benches.

Table I is the related-work capability matrix (qualitative; verified
against the implemented classes).  The Fig. 1 bench enumerates the
node-shift census of a failed broker -- the Type-1/2/3 options the
figure visualises -- and times the neighbourhood generation that the
tabu search leans on.
"""

from __future__ import annotations

from repro.core import neighbours, repair_options
from repro.experiments import (
    format_table,
    format_table1,
    table1_rows,
    verify_against_implementation,
)
from repro.simulator import initial_topology


def test_table1_related_work_matrix(benchmark):
    """Regenerate Table I and cross-check it against the code base."""
    rendered = benchmark(format_table1)
    print()
    print(rendered)
    rows = table1_rows()
    assert len(rows) == 11
    consistency = verify_against_implementation()
    assert all(consistency.values()), f"Table I inconsistent: {consistency}"


def test_fig1_nodeshift_census(benchmark):
    """Enumerate N(G, b) after a broker failure (the Fig. 1 options)."""
    topology = initial_topology(16, 4)
    failed = 1
    orphans = list(topology.lei(failed))
    stripped = topology.detach(failed)

    options = benchmark(lambda: repair_options(stripped, orphans))

    by_count = {}
    pre_failure = len(topology.brokers)
    for option in options:
        delta = len(option.brokers) - pre_failure
        by_count[delta] = by_count.get(delta, 0) + 1
    print()
    print(format_table(
        headers=("broker count vs pre-failure", "n options"),
        rows=sorted(by_count.items()),
        title="-- Fig. 1: node-shift census for one failed broker (16 hosts, 4 LEIs) --",
    ))
    # Fig. 1 semantics: higher (+1), lower (-1) and same (0) broker
    # counts are all reachable.
    assert {-1, 0, 1} <= set(by_count)


def test_fig1_neighbourhood_size(benchmark):
    """Time the full single-shift neighbourhood of an intact topology."""
    topology = initial_topology(16, 4)
    options = benchmark(lambda: neighbours(topology))
    print(f"\nneighbourhood size for 16 hosts / 4 LEIs: {len(options)}")
    assert len(options) > 20
