"""Shared benchmark fixtures.

Benches run a reduced-but-faithful configuration (8 hosts / 2 LEIs,
40-60 evaluation intervals, 150-interval DeFog trace, 32-wide GON) and
print the full rows/series of the corresponding paper artifact.  The
paper-scale settings (16 hosts / 4 LEIs, 100 intervals, 1000-interval
trace, 128-wide GON) are a config change away -- see
``repro.config.paper_scale`` and DESIGN.md §5.
"""

from __future__ import annotations

import pytest

from repro.config import ExperimentConfig, FaultConfig, FederationConfig, WorkloadConfig
from repro.core import TrainingConfig
from repro.experiments import prepare_assets


def bench_config(n_intervals: int = 40, seed: int = 1) -> ExperimentConfig:
    return ExperimentConfig(
        federation=FederationConfig(n_hosts=8, n_leis=2, n_large_hosts=4),
        workload=WorkloadConfig(suite="aiot", arrival_rate=1.2),
        faults=FaultConfig(rate=0.5),
        n_intervals=n_intervals,
        seed=seed,
    )


@pytest.fixture(scope="session")
def assets():
    """DeFog trace + offline-trained GON shared by every bench."""
    config = bench_config()
    return prepare_assets(
        config,
        trace_intervals=150,
        gon_hidden=32,
        gon_layers=3,
        training=TrainingConfig(
            epochs=8, batch_size=16, learning_rate=1e-3,
            generation_steps=20, seed=1,
        ),
    )


@pytest.fixture(scope="session")
def config():
    return bench_config()
