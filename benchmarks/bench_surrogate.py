"""Benchmark: per-candidate vs batched GON neighbourhood scoring.

Measures the cost of scoring one tabu neighbourhood (the hot inner
loop of ``CAROL.repair``): ``B`` candidate topologies, each evaluated
by the eq.-1 surrogate ascent through the QoS objective.  Three
implementations are timed:

* **seed per-candidate** -- the pre-batching engine's loop, kept here
  as a frozen reference: one :func:`predict_qos`-style ascent per
  candidate with model parameters hot in the graph (their gradients
  were computed and discarded) and an extra post-loop forward to read
  the confidence.  This is the path the batched engine replaced, and
  the baseline for the headline speedup.
* **sequential** -- the current engine (frozen parameters, fused
  attention, no redundant forward) still looping candidate by
  candidate through :func:`predict_qos`.
* **batched** -- the whole stack through one vectorized
  :func:`predict_qos_batch` ascent.

Defaults mirror the paper scenario: 16 hosts / 4 LEIs, a 128-wide
3-layer GON, ``neighbourhood_sample = 24`` candidates and
``surrogate_steps = 8`` ascent iterations per evaluation.  Also checks
batched-vs-sequential score parity, so a correctness regression fails
the run (CI invokes ``--quick``).

Run:  PYTHONPATH=src python benchmarks/bench_surrogate.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core import (
    GONDiscriminator,
    GONInput,
    N_M_FEATURES,
    N_S_FEATURES,
    QoSObjective,
    predict_qos,
    predict_qos_batch,
)
from repro.core.nodeshift import neighbours
from repro.nn import Tensor
from repro.simulator import initial_topology

_EPS = 1e-8

#: Local runs write under benchmarks/out/ so stray BENCH_*.json never
#: litter the working tree; CI passes explicit --json artifact paths.
_DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "out", "BENCH_surrogate.json"
)


def seed_predict_qos(model, sample, objective, gamma, max_steps, tol=1e-5):
    """The seed repo's per-candidate scoring loop, verbatim.

    Kept as the benchmark baseline: eq.-1 Adam ascent one sample at a
    time, parameters left requiring grad (the engine computed and
    discarded their gradients every step), and a final full forward
    pass just to read the confidence.
    """
    current = Tensor(np.array(sample.metrics, dtype=float, copy=True), requires_grad=True)
    first_moment = np.zeros_like(current.data)
    second_moment = np.zeros_like(current.data)
    beta1, beta2 = 0.9, 0.999
    for step in range(max_steps):
        current.zero_grad()
        score = model(current, sample.schedule, sample.adjacency)
        score.clip(_EPS, 1.0 - _EPS).log().backward()
        gradient = current.grad
        if gradient is None:
            break
        first_moment = beta1 * first_moment + (1 - beta1) * gradient
        second_moment = beta2 * second_moment + (1 - beta2) * gradient**2
        m_hat = first_moment / (1 - beta1 ** (step + 1))
        v_hat = second_moment / (1 - beta2 ** (step + 1))
        update = gamma * m_hat / (np.sqrt(v_hat) + 1e-8)
        current = Tensor(np.clip(current.data + update, 0.0, 3.0), requires_grad=True)
        if float(np.abs(update).max()) < tol:
            break
    final_score = model(current.detach(), sample.schedule, sample.adjacency)
    del final_score
    return objective(current.data)


def build_neighbourhood(n_hosts: int, n_leis: int, size: int, rng) -> list:
    """A sampled node-shift neighbourhood, as CAROL.repair draws it."""
    topology = initial_topology(n_hosts, n_leis)
    options = neighbours(topology)
    if len(options) > size:
        picks = rng.choice(len(options), size=size, replace=False)
        options = [options[i] for i in picks]
    return options


def flat_gemm_bench(args: argparse.Namespace) -> dict:
    """The ROADMAP flat-gemm decision, measured.

    Three ways to compute a batched ``[B, n, F] @ [F, H]`` product:

    * **per-slice** -- a Python loop issuing one ``[n, F] @ [F, H]``
      gemm per batch element (what stacked layers would pay without
      the reshape);
    * **stacked matmul** -- ``np.matmul`` broadcasting over the batch
      axis (BLAS is still invoked per slice inside numpy);
    * **flat** -- reshape to ``[B*n, F]``, one gemm, reshape back (the
      fast path ``repro.nn.Linear`` ships).

    Reports wall-times and the max elementwise deviation of the flat
    product from the per-slice reference, which anchors the documented
    tolerance decision in ``repro/nn/linear.py``.
    """
    rng = np.random.default_rng(args.seed)
    batch, n_hosts = args.batch, args.hosts
    in_features, hidden = 13, args.hidden
    x = rng.standard_normal((batch, n_hosts, in_features))
    w = rng.standard_normal((in_features, hidden))

    def per_slice():
        return np.stack([x[i] @ w for i in range(batch)])

    def stacked():
        return np.matmul(x, w)

    def flat():
        return (x.reshape(-1, in_features) @ w).reshape(batch, n_hosts, hidden)

    reference = per_slice()
    max_diff = float(np.abs(flat() - reference).max())
    stacked_diff = float(np.abs(stacked() - reference).max())

    timings = {}
    for label, fn in (("per_slice", per_slice), ("stacked_matmul", stacked), ("flat", flat)):
        best = min(_best_of(fn, repeats=max(args.repeats, 3), inner=50) for _ in range(2))
        timings[label] = best
    speedup = timings["per_slice"] / max(timings["flat"], 1e-12)
    print(
        f"\n-- flat-gemm fast path ([{batch}, {n_hosts}, {in_features}] "
        f"@ [{in_features}, {hidden}]) --"
    )
    for label, seconds in timings.items():
        print(f"  {label:<15} {seconds * 1e6:8.1f} us/call")
    print(
        f"  flat vs per-slice: {speedup:.1f}x, max|diff| = {max_diff:.2e} "
        f"(stacked matmul: {stacked_diff:.2e})"
    )
    return {
        "shape": [batch, n_hosts, in_features, hidden],
        "per_slice_us": round(timings["per_slice"] * 1e6, 2),
        "stacked_matmul_us": round(timings["stacked_matmul"] * 1e6, 2),
        "flat_us": round(timings["flat"] * 1e6, 2),
        "flat_speedup": round(speedup, 2),
        "flat_max_abs_diff": max_diff,
    }


def fast_backend_bench(args: argparse.Namespace, model, samples) -> dict:
    """The graph-free fused ascent kernels vs the autodiff oracle.

    Times the same warm-started eq.-1 ascent over the neighbourhood
    stack four ways -- the exact oracle looping per candidate, the
    exact batched oracle, and the :mod:`repro.core.fastscore` kernel in
    float64 (``fast``) and float32 (``fast32``).  Parity is part of the
    bench contract: ``fast`` must reproduce the oracle's confidences
    *bit-for-bit* (it mirrors the autodiff op order), ``fast32`` within
    rtol=1e-5.  The headline criterion key is the per-candidate
    speedup, consistent with ``speedup_batched_vs_seed`` above; the
    vs-batched ratios are recorded alongside because on a single BLAS
    stream the shared gemm floor caps them far lower.
    """
    from repro.core.fastscore import FastGONKernel
    from repro.core.surrogate import generate_metrics, generate_metrics_batch

    schedules = np.stack([np.asarray(s.schedule, dtype=float) for s in samples])
    adjacencies = np.stack([np.asarray(s.adjacency, dtype=float) for s in samples])
    init = np.stack([np.asarray(s.metrics, dtype=float) for s in samples])
    gamma, steps = args.gamma, args.steps

    kern64 = FastGONKernel.from_model(model, dtype="float64")
    kern32 = FastGONKernel.from_model(model, dtype="float32")

    def exact_per_candidate():
        return [
            generate_metrics(
                model,
                schedules[i],
                adjacencies[i],
                init_metrics=init[i],
                gamma=gamma,
                max_steps=steps,
            )
            for i in range(len(samples))
        ]

    def exact_batched():
        return generate_metrics_batch(
            model, schedules, adjacencies, init_metrics=init,
            gamma=gamma, max_steps=steps,
        )

    def fast():
        return kern64.ascent(
            schedules, adjacencies, init_metrics=init,
            gamma=gamma, max_steps=steps,
        )

    def fast32():
        return kern32.ascent(
            schedules, adjacencies, init_metrics=init,
            gamma=gamma, max_steps=steps,
        )

    # Warm-up doubles as the parity check.
    oracle = exact_batched()
    fast_results = fast()
    fast32_results = fast32()
    oracle_conf = np.array([r.confidence for r in oracle])
    oracle_metrics = np.stack([r.metrics for r in oracle])
    fast_conf = np.array([r.confidence for r in fast_results])
    fast_metrics = np.stack([r.metrics for r in fast_results])
    fast32_conf = np.array([r.confidence for r in fast32_results])
    bit_identical = bool(
        np.array_equal(fast_conf, oracle_conf)
        and np.array_equal(fast_metrics, oracle_metrics)
    )
    fast32_rel = float(
        np.abs(fast32_conf - oracle_conf).max()
        / max(np.abs(oracle_conf).max(), 1e-300)
    )
    assert bit_identical, "fast kernel diverged bitwise from the oracle"
    assert fast32_rel < 1e-5, (
        f"fast32 confidences off by rel {fast32_rel:.2e} (tier is 1e-5)"
    )

    timings = {}
    for label, fn in (
        ("exact_per_candidate", exact_per_candidate),
        ("exact_batched", exact_batched),
        ("fast", fast),
        ("fast32", fast32),
    ):
        best = float("inf")
        for _ in range(args.repeats):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        timings[label] = best

    per_cand = timings["exact_per_candidate"]
    batched = timings["exact_batched"]
    print("\n-- fast inference backend (graph-free fused ascent kernels) --")
    for label, best in timings.items():
        print(f"  {label:<20} {best * 1e3:8.1f} ms/neighbourhood")
    print(
        f"  fast:   {per_cand / timings['fast']:.2f}x per-candidate, "
        f"{batched / timings['fast']:.2f}x vs batched oracle "
        f"(bit-identical: {bit_identical})"
    )
    print(
        f"  fast32: {per_cand / timings['fast32']:.2f}x per-candidate, "
        f"{batched / timings['fast32']:.2f}x vs batched oracle "
        f"(max rel diff: {fast32_rel:.2e})"
    )
    return {
        "exact_per_candidate_ms": round(per_cand * 1e3, 2),
        "exact_batched_ms": round(batched * 1e3, 2),
        "fast_ms": round(timings["fast"] * 1e3, 2),
        "fast32_ms": round(timings["fast32"] * 1e3, 2),
        "fast_per_candidate_speedup": round(per_cand / timings["fast"], 2),
        "fast32_per_candidate_speedup": round(per_cand / timings["fast32"], 2),
        "fast_vs_batched_speedup": round(batched / timings["fast"], 2),
        "fast32_vs_batched_speedup": round(batched / timings["fast32"], 2),
        "fast_bit_identical": bit_identical,
        "fast32_score_parity_rtol_1e5": bool(fast32_rel < 1e-5),
        "fast32_max_rel_diff": fast32_rel,
    }


def _best_of(fn, repeats: int, inner: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - started) / inner)
    return best


def run(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    model = GONDiscriminator(rng, hidden=args.hidden, n_layers=args.layers)
    objective = QoSObjective(0.5, 0.5)

    candidates = build_neighbourhood(args.hosts, args.leis, args.batch, rng)
    metrics = rng.uniform(0, 1, size=(args.hosts, N_M_FEATURES))
    schedule = rng.uniform(0, 1, size=(args.hosts, N_S_FEATURES))
    samples = [GONInput(metrics, schedule, candidate.adjacency()) for candidate in candidates]
    batch = len(samples)
    print(
        f"scenario: {args.hosts} hosts / {args.leis} LEIs, "
        f"GON {args.hidden}x{args.layers}, neighbourhood B={batch}, "
        f"{args.steps} ascent steps, gamma={args.gamma}"
    )

    def seed() -> list:
        return [
            seed_predict_qos(
                model, s, objective, gamma=args.gamma, max_steps=args.steps
            )
            for s in samples
        ]

    def sequential() -> list:
        return [
            predict_qos(model, s, objective, gamma=args.gamma, max_steps=args.steps)
            for s in samples
        ]

    def batched() -> list:
        return predict_qos_batch(model, samples, objective, gamma=args.gamma, max_steps=args.steps)

    # Warm-up (allocator, BLAS threads) doubles as the parity check:
    # all three paths must score the neighbourhood identically.
    seed_scores = np.array(seed())
    seq_result = sequential()
    bat_result = batched()

    seq_scores = np.array([score for score, _ in seq_result])
    bat_scores = np.array([score for score, _ in bat_result])
    np.testing.assert_allclose(
        seq_scores,
        seed_scores,
        rtol=1e-7,
        atol=1e-10,
        err_msg="current engine diverged from the seed per-candidate path",
    )
    np.testing.assert_allclose(
        bat_scores,
        seq_scores,
        rtol=1e-7,
        atol=1e-10,
        err_msg="batched neighbourhood scoring diverged from sequential",
    )

    seed_times, seq_times, bat_times = [], [], []
    for _ in range(args.repeats):
        started = time.perf_counter()
        seed()
        seed_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        sequential()
        seq_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        batched()
        bat_times.append(time.perf_counter() - started)

    seed_best = min(seed_times)
    seq_best = min(seq_times)
    bat_best = min(bat_times)
    speedup = seed_best / bat_best
    rows = [
        ("seed per-candidate", seed_best),
        ("sequential (new engine)", seq_best),
        ("batched", bat_best),
    ]
    for label, best in rows:
        print(
            f"  {label:<24} {best * 1e3:8.1f} ms/neighbourhood  "
            f"({best / batch * 1e3:6.2f} ms/candidate)"
        )
    print(
        f"  speedup: {speedup:.1f}x batched vs seed per-candidate "
        f"({seq_best / bat_best:.1f}x vs new-engine sequential; "
        f"parity max|diff| = {np.abs(bat_scores - seed_scores).max():.2e})"
    )

    flat_gemm = flat_gemm_bench(args)
    fast_backend = fast_backend_bench(args, model, samples)

    payload = {
        "bench": "surrogate",
        "quick": args.quick,
        "numpy": np.__version__,
        "scenario": {
            "hosts": args.hosts,
            "leis": args.leis,
            "gon": f"{args.hidden}x{args.layers}",
            "B": batch,
            "steps": args.steps,
            "gamma": args.gamma,
        },
        "seed_per_candidate_ms": round(seed_best * 1e3, 2),
        "sequential_ms": round(seq_best * 1e3, 2),
        "batched_ms": round(bat_best * 1e3, 2),
        "speedup_batched_vs_seed": round(speedup, 2),
        "parity_max_abs_diff": float(np.abs(bat_scores - seed_scores).max()),
        "flat_gemm": flat_gemm,
        "fast_backend": fast_backend,
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
    with open(args.json, "w") as sink:
        json.dump(payload, sink, indent=2)
    print(f"\nwrote {args.json}")

    if args.min_speedup > 0 and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required {args.min_speedup}x")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small model / fewer repeats (CI smoke)"
    )
    parser.add_argument(
        "--batch", type=int, default=24, help="neighbourhood size B (paper default 24)"
    )
    parser.add_argument("--hosts", type=int, default=16)
    parser.add_argument("--leis", type=int, default=4)
    parser.add_argument("--hidden", type=int, default=128)
    parser.add_argument("--layers", type=int, default=3)
    parser.add_argument(
        "--steps", type=int, default=8, help="surrogate ascent steps per evaluation"
    )
    parser.add_argument("--gamma", type=float, default=1e-2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero below this speedup (0 disables)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=_DEFAULT_JSON,
        help="write machine-readable results here (default: benchmarks/out/, kept out of "
        "the working tree; CI passes an explicit path)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.quick:
        args.hidden = min(args.hidden, 32)
        args.layers = min(args.layers, 2)
        args.repeats = 1
        args.steps = min(args.steps, 4)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
