"""Benchmark: per-candidate vs batched GON neighbourhood scoring.

Measures the cost of scoring one tabu neighbourhood (the hot inner
loop of ``CAROL.repair``): ``B`` candidate topologies, each evaluated
by the eq.-1 surrogate ascent through the QoS objective.  Three
implementations are timed:

* **seed per-candidate** -- the pre-batching engine's loop, kept here
  as a frozen reference: one :func:`predict_qos`-style ascent per
  candidate with model parameters hot in the graph (their gradients
  were computed and discarded) and an extra post-loop forward to read
  the confidence.  This is the path the batched engine replaced, and
  the baseline for the headline speedup.
* **sequential** -- the current engine (frozen parameters, fused
  attention, no redundant forward) still looping candidate by
  candidate through :func:`predict_qos`.
* **batched** -- the whole stack through one vectorized
  :func:`predict_qos_batch` ascent.

Defaults mirror the paper scenario: 16 hosts / 4 LEIs, a 128-wide
3-layer GON, ``neighbourhood_sample = 24`` candidates and
``surrogate_steps = 8`` ascent iterations per evaluation.  Also checks
batched-vs-sequential score parity, so a correctness regression fails
the run (CI invokes ``--quick``).

Run:  PYTHONPATH=src python benchmarks/bench_surrogate.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core import (
    GONDiscriminator,
    GONInput,
    N_M_FEATURES,
    N_S_FEATURES,
    QoSObjective,
    predict_qos,
    predict_qos_batch,
)
from repro.core.nodeshift import neighbours
from repro.nn import Tensor
from repro.simulator import initial_topology

_EPS = 1e-8


def seed_predict_qos(model, sample, objective, gamma, max_steps, tol=1e-5):
    """The seed repo's per-candidate scoring loop, verbatim.

    Kept as the benchmark baseline: eq.-1 Adam ascent one sample at a
    time, parameters left requiring grad (the engine computed and
    discarded their gradients every step), and a final full forward
    pass just to read the confidence.
    """
    current = Tensor(np.array(sample.metrics, dtype=float, copy=True),
                     requires_grad=True)
    first_moment = np.zeros_like(current.data)
    second_moment = np.zeros_like(current.data)
    beta1, beta2 = 0.9, 0.999
    for step in range(max_steps):
        current.zero_grad()
        score = model(current, sample.schedule, sample.adjacency)
        score.clip(_EPS, 1.0 - _EPS).log().backward()
        gradient = current.grad
        if gradient is None:
            break
        first_moment = beta1 * first_moment + (1 - beta1) * gradient
        second_moment = beta2 * second_moment + (1 - beta2) * gradient ** 2
        m_hat = first_moment / (1 - beta1 ** (step + 1))
        v_hat = second_moment / (1 - beta2 ** (step + 1))
        update = gamma * m_hat / (np.sqrt(v_hat) + 1e-8)
        current = Tensor(
            np.clip(current.data + update, 0.0, 3.0), requires_grad=True
        )
        if float(np.abs(update).max()) < tol:
            break
    final_score = model(current.detach(), sample.schedule, sample.adjacency)
    del final_score
    return objective(current.data)


def build_neighbourhood(n_hosts: int, n_leis: int, size: int, rng) -> list:
    """A sampled node-shift neighbourhood, as CAROL.repair draws it."""
    topology = initial_topology(n_hosts, n_leis)
    options = neighbours(topology)
    if len(options) > size:
        picks = rng.choice(len(options), size=size, replace=False)
        options = [options[i] for i in picks]
    return options


def run(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    model = GONDiscriminator(rng, hidden=args.hidden, n_layers=args.layers)
    objective = QoSObjective(0.5, 0.5)

    candidates = build_neighbourhood(args.hosts, args.leis, args.batch, rng)
    metrics = rng.uniform(0, 1, size=(args.hosts, N_M_FEATURES))
    schedule = rng.uniform(0, 1, size=(args.hosts, N_S_FEATURES))
    samples = [
        GONInput(metrics, schedule, candidate.adjacency())
        for candidate in candidates
    ]
    batch = len(samples)
    print(
        f"scenario: {args.hosts} hosts / {args.leis} LEIs, "
        f"GON {args.hidden}x{args.layers}, neighbourhood B={batch}, "
        f"{args.steps} ascent steps, gamma={args.gamma}"
    )

    def seed() -> list:
        return [
            seed_predict_qos(
                model, s, objective, gamma=args.gamma, max_steps=args.steps
            )
            for s in samples
        ]

    def sequential() -> list:
        return [
            predict_qos(model, s, objective, gamma=args.gamma, max_steps=args.steps)
            for s in samples
        ]

    def batched() -> list:
        return predict_qos_batch(
            model, samples, objective, gamma=args.gamma, max_steps=args.steps
        )

    # Warm-up (allocator, BLAS threads) doubles as the parity check:
    # all three paths must score the neighbourhood identically.
    seed_scores = np.array(seed())
    seq_result = sequential()
    bat_result = batched()

    seq_scores = np.array([score for score, _ in seq_result])
    bat_scores = np.array([score for score, _ in bat_result])
    np.testing.assert_allclose(
        seq_scores, seed_scores, rtol=1e-7, atol=1e-10,
        err_msg="current engine diverged from the seed per-candidate path",
    )
    np.testing.assert_allclose(
        bat_scores, seq_scores, rtol=1e-7, atol=1e-10,
        err_msg="batched neighbourhood scoring diverged from sequential",
    )

    seed_times, seq_times, bat_times = [], [], []
    for _ in range(args.repeats):
        started = time.perf_counter()
        seed()
        seed_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        sequential()
        seq_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        batched()
        bat_times.append(time.perf_counter() - started)

    seed_best = min(seed_times)
    seq_best = min(seq_times)
    bat_best = min(bat_times)
    speedup = seed_best / bat_best
    rows = [
        ("seed per-candidate", seed_best),
        ("sequential (new engine)", seq_best),
        ("batched", bat_best),
    ]
    for label, best in rows:
        print(
            f"  {label:<24} {best * 1e3:8.1f} ms/neighbourhood  "
            f"({best / batch * 1e3:6.2f} ms/candidate)"
        )
    print(
        f"  speedup: {speedup:.1f}x batched vs seed per-candidate "
        f"({seq_best / bat_best:.1f}x vs new-engine sequential; "
        f"parity max|diff| = {np.abs(bat_scores - seed_scores).max():.2e})"
    )

    if args.min_speedup > 0 and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required {args.min_speedup}x")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small model / fewer repeats (CI smoke)")
    parser.add_argument("--batch", type=int, default=24,
                        help="neighbourhood size B (paper default 24)")
    parser.add_argument("--hosts", type=int, default=16)
    parser.add_argument("--leis", type=int, default=4)
    parser.add_argument("--hidden", type=int, default=128)
    parser.add_argument("--layers", type=int, default=3)
    parser.add_argument("--steps", type=int, default=8,
                        help="surrogate ascent steps per evaluation")
    parser.add_argument("--gamma", type=float, default=1e-2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit non-zero below this speedup (0 disables)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.quick:
        args.hidden = min(args.hidden, 32)
        args.layers = min(args.layers, 2)
        args.repeats = 1
        args.steps = min(args.steps, 4)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
