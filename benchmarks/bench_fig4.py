"""Fig. 4 bench -- GON training curves.

Re-trains the GON from scratch on the session trace and prints the
per-epoch loss / MSE / confidence series.  The paper's shape: loss
falls, MSE falls, confidence rises, convergence within ~30 epochs.
"""

from __future__ import annotations

import numpy as np

from repro.core import GONDiscriminator, TrainingConfig, train_gon
from repro.experiments import format_fig4


def test_fig4_training_curves(benchmark, assets):
    def train():
        model = GONDiscriminator(np.random.default_rng(4), hidden=32, n_layers=3)
        config = TrainingConfig(
            epochs=10,
            batch_size=16,
            learning_rate=1e-3,
            generation_steps=20,
            seed=4,
        )
        return train_gon(model, assets.samples, config)

    history = benchmark.pedantic(train, rounds=1, iterations=1)

    print()
    print(format_fig4(history))

    # Fig. 4 shape assertions.
    assert history.losses[-1] < history.losses[0], "loss did not fall"
    assert history.confidences[-1] > history.confidences[0], "confidence did not rise"
    assert history.mses[-1] < history.mses[0], "generation MSE did not fall"
