"""CI bench regression gate: compare fresh BENCH_*.json to a baseline.

The benches (``bench_surrogate.py``, ``bench_campaign.py``) emit
machine-readable JSON.  This gate keeps two classes of regression out
of main without turning CI into a flaky timing oracle:

* **Speedup collapse** -- every numeric key containing ``speedup`` is
  a ratio of two timings measured on the *same* box in the *same* job,
  so it is far more stable than raw wall-clock.  The gate fails only
  when a fresh ratio drops below ``baseline / tolerance`` (default
  tolerance 2.0, i.e. a >2x relative slowdown) -- generous enough for
  noisy CI runners, tight enough to catch "the batched path silently
  became the slow path".
* **Parity breakage** -- boolean keys such as ``bit_identical_*`` or
  ``*_equal_*`` assert exactness contracts (fleet == serial records,
  batched == sequential scores).  Any ``false`` in a fresh result
  fails immediately; there is no tolerance on correctness.
* **Observability cost creep** -- numeric keys containing
  ``overhead_ratio`` (the telemetry section of ``bench_campaign.py``)
  are enabled/disabled wall-clock ratios gated against an **absolute**
  cap of ``1.10``: instrumentation that costs more than 10% of a
  campaign's runtime fails regardless of what the baseline recorded --
  "low-overhead" is a contract, not a trajectory.

Coverage is part of the contract: a gated key present in the baseline
but missing from a fresh result means a bench section silently stopped
running, and a fresh key absent from the baseline means a new section
landed without being gated.  Both are **hard errors**, as is a fresh
result file the baseline has never seen -- additive bench changes must
ship a regenerated ``BENCH_baseline.json`` (``--write-baseline``) in
the same PR.

Usage::

    # gate (CI): compare fresh results against the committed baseline
    python benchmarks/check_regression.py --baseline BENCH_baseline.json \
        BENCH_surrogate.json BENCH_campaign.json

    # refresh the committed baseline from fresh quick-mode results
    python benchmarks/check_regression.py --baseline BENCH_baseline.json \
        --write-baseline BENCH_surrogate.json BENCH_campaign.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, List, Tuple

DEFAULT_TOLERANCE = 2.0

#: Numeric keys matching this substring are tracked speedup ratios.
SPEEDUP_MARKER = "speedup"
#: Numeric keys matching this substring are instrumentation-cost
#: ratios (enabled / disabled wall-clock), capped absolutely.
OVERHEAD_MARKER = "overhead_ratio"
#: Hard ceiling on any ``*overhead_ratio*`` key: telemetry costing
#: more than 10% of the uninstrumented runtime fails the gate.
MAX_OVERHEAD_RATIO = 1.10
#: Boolean keys matching any of these substrings are parity contracts.
PARITY_MARKERS = ("bit_identical", "identical", "parity", "_equal")
#: ...except keys about merged-bucket execution: the serving layer
#: explicitly waives the bitwise guarantee there (scores match only to
#: ~1e-15, see repro/serving/service.py), so benches report the
#: observed equality as telemetry, not as a contract the gate may
#: turn into a hard failure.
PARITY_WAIVED_MARKERS = ("merged",)


def _walk(payload, prefix: str = "") -> Iterator[Tuple[str, object]]:
    """Yield ``(dotted.path, leaf)`` for every leaf of a JSON tree."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield from _walk(value, f"{prefix}{key}." if prefix else f"{key}.")
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            yield from _walk(value, f"{prefix}{index}.")
    else:
        yield prefix.rstrip("."), payload


def extract(payload) -> Dict[str, Dict[str, object]]:
    """Pull the gated values out of one bench result tree."""
    speedups: Dict[str, float] = {}
    parity: Dict[str, bool] = {}
    overheads: Dict[str, float] = {}
    for path, value in _walk(payload):
        key = path.rsplit(".", 1)[-1].lower()
        if isinstance(value, bool):
            if any(marker in key for marker in PARITY_MARKERS) and not any(
                marker in key for marker in PARITY_WAIVED_MARKERS
            ):
                parity[path] = value
        elif isinstance(value, (int, float)):
            if OVERHEAD_MARKER in key:
                overheads[path] = float(value)
            elif SPEEDUP_MARKER in key:
                speedups[path] = float(value)
    return {"speedups": speedups, "parity": parity, "overheads": overheads}


def _load(path: str):
    """One result tree: a JSON file, or a campaign store database.

    Store files reuse ``compare_records.load_payload`` (same directory,
    stdlib-only) so the gate can walk a ``--store sqlite`` campaign's
    telemetry/records exactly like a ``--record-json`` dump.
    """
    with open(path, "rb") as probe:
        if probe.read(16) == b"SQLite format 3\x00":
            sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
            from compare_records import load_payload

            return load_payload(path)
    with open(path) as source:
        return json.load(source)


def check_file(
    name: str,
    fresh: Dict[str, Dict[str, object]],
    baseline: Dict[str, Dict[str, object]],
    tolerance: float,
) -> List[str]:
    """Failure messages for one bench result (empty means pass)."""
    failures: List[str] = []
    for path, value in sorted(fresh["parity"].items()):
        if not value:
            failures.append(f"{name}: parity contract {path} is false")
    base_speedups = baseline.get("speedups", {})
    for path in sorted(set(fresh["speedups"]) - set(base_speedups)):
        failures.append(
            f"{name}: {path} has no baseline entry -- an ungated bench "
            "section; regenerate BENCH_baseline.json with --write-baseline"
        )
    for path in sorted(set(base_speedups) - set(fresh["speedups"])):
        failures.append(
            f"{name}: baseline key {path} missing from the fresh result "
            "-- a bench section silently stopped running"
        )
    for path in sorted(set(baseline.get("parity", {})) - set(fresh["parity"])):
        failures.append(
            f"{name}: baseline parity contract {path} missing from the "
            "fresh result -- a bench assertion silently stopped running"
        )
    base_overheads = baseline.get("overheads", {})
    fresh_overheads = fresh.get("overheads", {})
    for path in sorted(set(base_overheads) - set(fresh_overheads)):
        failures.append(
            f"{name}: baseline overhead gate {path} missing from the "
            "fresh result -- the telemetry bench silently stopped running"
        )
    for path, fresh_value in sorted(fresh_overheads.items()):
        status = "ok" if fresh_value <= MAX_OVERHEAD_RATIO else "FAIL"
        print(
            f"  {status}: {name}: {path} = {fresh_value:.3f}x "
            f"(absolute cap {MAX_OVERHEAD_RATIO:.2f}x)"
        )
        if fresh_value > MAX_OVERHEAD_RATIO:
            failures.append(
                f"{name}: {path} = {fresh_value:.3f}x exceeds the "
                f"{MAX_OVERHEAD_RATIO:.2f}x instrumentation-cost cap"
            )
    for path, fresh_value in sorted(fresh["speedups"].items()):
        base_value = base_speedups.get(path)
        if base_value is None:
            continue  # already a failure above
        floor = base_value / tolerance
        status = "ok" if fresh_value >= floor else "FAIL"
        print(
            f"  {status}: {name}: {path} = {fresh_value:.2f}x "
            f"(baseline {base_value:.2f}x, floor {floor:.2f}x)"
        )
        if fresh_value < floor:
            failures.append(
                f"{name}: {path} regressed to {fresh_value:.2f}x, "
                f"more than {tolerance:.1f}x below baseline {base_value:.2f}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results",
        nargs="*",
        default=["BENCH_surrogate.json", "BENCH_campaign.json"],
        help="fresh bench result files (default: the two CI smoke outputs)",
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_baseline.json",
        help="committed baseline file (default: BENCH_baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="relative slowdown allowed before failing "
        "(0 = use the baseline file's own tolerance, falling back to 2.0)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the fresh results instead of gating",
    )
    args = parser.parse_args(argv)

    paths = list(args.results)
    if args.write_baseline:
        # Baseline refresh tolerates missing files; the gate does not
        # (a missing result means a bench silently stopped running).
        paths = [path for path in paths if os.path.exists(path)]
    fresh_by_name = {os.path.basename(path): extract(_load(path)) for path in paths}

    if args.write_baseline:
        payload = {
            "_comment": (
                "Quick-mode bench baseline for the CI regression gate; "
                "regenerate with benchmarks/check_regression.py "
                "--write-baseline after intentional perf changes."
            ),
            "tolerance": args.tolerance or DEFAULT_TOLERANCE,
            "benches": fresh_by_name,
        }
        with open(args.baseline, "w") as sink:
            json.dump(payload, sink, indent=2)
        print(f"wrote {args.baseline} from {sorted(fresh_by_name)}")
        return 0

    baseline = _load(args.baseline)
    tolerance = args.tolerance or float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    benches = baseline.get("benches", {})

    print(f"-- bench regression gate (tolerance {tolerance:.1f}x) --")
    failures: List[str] = []
    for name, fresh in sorted(fresh_by_name.items()):
        base = benches.get(name)
        if base is None:
            failures.append(
                f"{name}: not in the baseline -- a new bench output must "
                "ship a regenerated BENCH_baseline.json (--write-baseline)"
            )
            continue
        failures.extend(check_file(name, fresh, base, tolerance))
    for name in sorted(set(benches) - set(fresh_by_name)):
        failures.append(
            f"{name}: in the baseline but absent from this gate run -- "
            "a bench silently stopped running (or wasn't passed here)"
        )

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no speedup regression beyond tolerance, all parity holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
