"""Campaign bench -- wall-time of serial vs. process-parallel grids.

Measures the same scenario x model x seed grid executed with
``workers=1`` and ``workers=2`` and prints both wall times plus the
speedup, so the process-parallel fan-out of
:mod:`repro.experiments.campaign` is tracked in the bench trajectory.
The grid uses a heuristic model (no offline GON training) so the bench
isolates the executor overhead and simulation cost.

On a single-core runner the speedup hovers around (or below) 1x --
the bench asserts correctness (bit-identical records), not a speedup.
"""

from __future__ import annotations

import time

from repro.experiments import CampaignConfig, run_campaign

#: Grid: 3 scenarios x 1 model x 2 seeds at 8 intervals each.
BENCH_GRID = dict(
    scenarios=("paper-default", "correlated-rack", "flash-crowd"),
    models=("dyverse",),
    n_seeds=2,
    seed=1,
    n_intervals=8,
)


def _timed_run(workers: int):
    config = CampaignConfig(workers=workers, **BENCH_GRID)
    started = time.perf_counter()
    result = run_campaign(config)
    return time.perf_counter() - started, result


def test_campaign_serial_vs_parallel(capsys):
    serial_seconds, serial = _timed_run(workers=1)
    parallel_seconds, parallel = _timed_run(workers=2)

    assert serial.rows() == parallel.rows(), (
        "parallel campaign diverged from serial"
    )

    n_runs = len(serial.records)
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    with capsys.disabled():
        print("\n-- campaign wall-time: serial vs process-parallel --")
        print(f"grid            : {n_runs} runs "
              f"({len(BENCH_GRID['scenarios'])} scenarios x "
              f"{BENCH_GRID['n_seeds']} seeds)")
        print(f"serial (1 proc) : {serial_seconds:.2f} s")
        print(f"parallel (2 proc): {parallel_seconds:.2f} s")
        print(f"speedup         : {speedup:.2f}x")
        print(serial.format_summary())


if __name__ == "__main__":
    import sys

    import pytest

    sys.exit(pytest.main([__file__, "-x", "-q", "-s"]))
