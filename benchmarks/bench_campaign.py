"""Campaign bench: process-pool vs fleet-batched execution.

Two comparisons, both emitting machine-readable results to
``BENCH_campaign.json`` so the perf trajectory is tracked across PRs:

* **default** -- the PR-1 comparison: the same heuristic-model grid
  executed serially and across a process pool (bit-identity asserted;
  on a single-core runner the speedup hovers around 1x).
* **--fleet** -- the head-to-head for the fleet scoring service: a
  CAROL campaign (offline GON training + surrogate-driven repair)
  executed three ways --

  1. the PR-1 process-pool path: every run trains its own GON and
     scores in-process (the baseline the speedup is measured against);
  2. fleet mode: assets trained once, published via shared memory,
     all runs feeding one batched scoring service (exact policy;
     records bit-identical to serial/process at equal shared assets);
  3. the process pool with the same shared assets -- isolates the
     scoring-consolidation share of the win and anchors the
     bit-identity check against fleet records.

  A merged-bucket fleet variant (``fleet_merge``) is timed as well,
  and the persistent surrogate-cache hit rates are reported for both
  cache scopes on paper-default plus the fault-free control.
* **--telemetry** -- the instrumentation-cost measurement: the same
  serial grid executed with the :mod:`repro.telemetry` registry
  enabled and disabled (min of two runs each, damping scheduler
  noise).  The resulting ``telemetry_overhead_ratio`` is gated by
  ``check_regression.py`` against an absolute 1.10x cap: observability
  that costs more than 10% of a campaign fails CI.
* **--tcp** -- the transport head-to-head: the same fleet grid
  executed over the in-machine queue transport and over TCP sockets
  on localhost (length-prefixed binary frames, workers fetching
  assets over the wire).  Records are asserted bit-identical across
  transports; the ``tcp_vs_queue_speedup`` ratio tracks the framing
  overhead so a serialization regression cannot land silently.
* **--fast-backend** -- the scorer-backend head-to-head: the same
  shared-assets CAROL grid executed with ``scorer_backend`` exact /
  fast / fast32.  The fast path must produce bit-identical records
  and identical decision digests; fast32 must agree on every
  decision (its rtol=1e-5 score tier is gated in the surrogate
  bench).

Run:  PYTHONPATH=src python benchmarks/bench_campaign.py [--fleet] [--tcp] [--fast-backend] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace

import numpy as np

from repro.core import CAROL, CAROLConfig, TrainingConfig
from repro.experiments import (
    CampaignConfig,
    CampaignResult,
    prepare_assets,
    prepare_campaign_assets,
    run_campaign,
)
from repro.experiments.campaign import plan_tasks
from repro.experiments.fleet import run_fleet_campaign
from repro.experiments.runner import run_experiment
from repro.scenarios import build_topology, get_scenario
from repro.simulator.engine import EdgeFederation


#: Local runs write under benchmarks/out/ so stray BENCH_*.json never
#: litter the working tree; CI passes explicit --json artifact paths.
_DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "out", "BENCH_campaign.json"
)


def _timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - started, result


# ----------------------------------------------------------------------
# Default mode: serial vs process pool (the PR-1 bench, kept)
# ----------------------------------------------------------------------
def legacy_grid(quick: bool) -> CampaignConfig:
    return CampaignConfig(
        scenarios=("paper-default", "correlated-rack", "flash-crowd"),
        models=("dyverse",),
        n_seeds=1 if quick else 2,
        seed=1,
        n_intervals=4 if quick else 8,
        workers=1,
    )


def run_legacy(args: argparse.Namespace) -> dict:
    config = legacy_grid(args.quick)
    serial_seconds, serial = _timed(run_campaign, config)
    parallel_seconds, parallel = _timed(run_campaign, replace(config, workers=2))
    assert serial.rows() == parallel.rows(), "parallel campaign diverged from serial"
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print("\n-- campaign wall-time: serial vs process-parallel --")
    print(f"grid             : {len(serial.records)} runs")
    print(f"serial (1 proc)  : {serial_seconds:.2f} s")
    print(f"parallel (2 proc): {parallel_seconds:.2f} s")
    print(f"speedup          : {speedup:.2f}x")
    print(serial.format_summary())
    return {
        "n_runs": len(serial.records),
        "serial_s": round(serial_seconds, 3),
        "process_2_workers_s": round(parallel_seconds, 3),
        "speedup": round(speedup, 2),
        "bit_identical": True,
    }


# ----------------------------------------------------------------------
# --fleet: process-pool vs fleet-batched CAROL campaigns
# ----------------------------------------------------------------------
def fleet_grid(args: argparse.Namespace) -> CampaignConfig:
    # --proactive sweeps the §VI scheme instead of reactive CAROL; its
    # aggressive fine-tuning makes the fleet numbers lean on the
    # scoring service's per-client weight overlays.  The POT gate is
    # opened early (carol_overrides) so the overlay path is actually
    # on the timed path, not just configured.
    proactive = getattr(args, "proactive", False)
    return CampaignConfig(
        scenarios=("paper-default",),
        models=("carol-proactive",) if proactive else ("carol",),
        n_seeds=args.runs,
        workers=args.workers,
        seed=1,
        n_intervals=args.intervals,
        trace_intervals=args.trace_intervals,
        gon_hidden=args.gon_hidden,
        gon_layers=args.gon_layers,
        gon_epochs=args.gon_epochs,
        carol_overrides=(
            (("pot_calibration", 5), ("min_buffer", 2)) if proactive else ()
        ),
    )


def run_fleet_bench(args: argparse.Namespace) -> dict:
    process_config = fleet_grid(args)
    fleet_config = replace(process_config, mode="fleet", shared_assets=True)
    shared_config = replace(process_config, shared_assets=True)
    model_name = process_config.models[0]
    print(
        f"\n-- fleet bench: {process_config.n_seeds} x {model_name} on "
        f"paper-default, {process_config.n_intervals} intervals, "
        f"GON {process_config.gon_hidden}x{process_config.gon_layers}, "
        f"{process_config.workers} workers --"
    )

    # 1. The PR-1 path: per-run offline training + in-process scoring.
    pr1_seconds, pr1 = _timed(run_campaign, process_config)
    print(f"process pool, per-run assets (PR-1 path): {pr1_seconds:6.2f} s")

    # Shared offline assets, prepared once and reused by every
    # subsequent configuration (fleet pays this bill in its total).
    prep_seconds, assets = _timed(prepare_campaign_assets, shared_config)
    print(f"shared asset preparation (once)         : {prep_seconds:6.2f} s")

    # 2. Fleet mode (exact policy): one batched scoring service.
    tasks = plan_tasks(fleet_config)
    stats_sink: list = []
    fleet_seconds, fleet_records = _timed(
        run_fleet_campaign, fleet_config, tasks, assets, stats_sink
    )
    fleet_total = prep_seconds + fleet_seconds
    fleet = CampaignResult(config=fleet_config, records=fleet_records)
    print(
        f"fleet exec (exact)                      : {fleet_seconds:6.2f} s"
        f"  (+prep = {fleet_total:.2f} s total)"
    )

    # 3. Process pool with the same shared assets: the bit-identity
    #    anchor, and the scoring-consolidation share of the win.
    shared_seconds, shared = _timed(run_campaign, shared_config, prepared_assets=assets)
    print(f"process pool, shared assets             : {shared_seconds:6.2f} s")

    identical = fleet.rows() == shared.rows()
    assert identical, "fleet records diverged from process/shared records"

    # 4. Merged-bucket fleet variant (throughput policy).
    merged_sink: list = []
    merged_seconds, merged_records = _timed(
        run_fleet_campaign,
        replace(fleet_config, fleet_merge=True),
        plan_tasks(fleet_config),
        assets,
        merged_sink,
    )
    merged = CampaignResult(config=fleet_config, records=merged_records)
    merged_equal = merged.rows() == fleet.rows()
    print(
        f"fleet exec (merged buckets)             : {merged_seconds:6.2f} s"
        f"  (records {'==' if merged_equal else '!='} exact fleet)"
    )

    speedup = pr1_seconds / max(fleet_total, 1e-9)
    exec_speedup = shared_seconds / max(fleet_seconds, 1e-9)
    stats = stats_sink[0]
    # Degradation telemetry: with overlays on, no fleet run may fall
    # back to worker-local scoring, however often it fine-tuned.
    fallbacks = sum(r.diagnostics.get("local_fallbacks", 0) for r in fleet_records)
    overlays = sum(r.diagnostics.get("overlay_installs", 0) for r in fleet_records)
    assert fallbacks == 0, f"{fallbacks} fleet ascents degraded to worker-local scoring"
    print(
        f"speedup vs PR-1 path: {speedup:.2f}x end-to-end "
        f"({exec_speedup:.2f}x exec-only vs process/shared); "
        f"service saw {stats.n_requests} requests / "
        f"{stats.n_elements} stacked candidates; "
        f"{overlays} weight overlays installed, {fallbacks} local fallbacks"
    )

    return {
        "scenario": "paper-default",
        "model": model_name,
        "local_fallbacks": fallbacks,
        "overlay_installs": overlays,
        "n_runs": process_config.n_seeds,
        "workers": process_config.workers,
        "n_intervals": process_config.n_intervals,
        "gon": f"{process_config.gon_hidden}x{process_config.gon_layers}",
        "process_per_run_assets_s": round(pr1_seconds, 3),
        "shared_prep_s": round(prep_seconds, 3),
        "fleet_exec_s": round(fleet_seconds, 3),
        "fleet_total_s": round(fleet_total, 3),
        "process_shared_assets_s": round(shared_seconds, 3),
        "fleet_merged_exec_s": round(merged_seconds, 3),
        "speedup_vs_pr1": round(speedup, 2),
        "exec_speedup_vs_process_shared": round(exec_speedup, 2),
        "bit_identical_fleet_vs_process": identical,
        "merged_records_equal_exact": merged_equal,
        "service": {
            "requests": stats.n_requests,
            "elements": stats.n_elements,
            "batches": stats.n_batches,
            "merged_elements_in_merged_mode": merged_sink[0].merged_elements,
        },
    }


# ----------------------------------------------------------------------
# --fast-backend: scorer-backend head-to-head on the same CAROL grid
# ----------------------------------------------------------------------
def run_fast_backend_bench(args: argparse.Namespace) -> dict:
    """End-to-end campaign timing per scorer backend, parity asserted.

    The same shared-assets CAROL grid executed with the exact autodiff
    oracle, the fused float64 kernels (``fast``) and the float32
    kernels (``fast32``).  ``fast`` is held to bit-identical records
    *and* identical decision digests.  ``fast32`` decision agreement is
    *recorded but not asserted* on this grid: the quick bench trains a
    deliberately tiny GON whose candidate scores tie within float32
    noise, so tie-breaks legitimately flip -- the enforced fast32 gates
    (rtol=1e-5 scores, decision agreement on trained surrogates) live
    in the surrogate bench and the scenario-catalog parity tests.  The
    end-to-end speedups are modest by construction -- the simulator
    and offline assets dominate a campaign -- so the surrogate bench's
    per-ascent numbers carry the headline; these keys pin the
    integration.
    """
    shared = replace(fleet_grid(args), shared_assets=True)
    print(
        f"\n-- fast-backend bench: {shared.n_seeds} x {shared.models[0]} on "
        f"paper-default, {shared.n_intervals} intervals, "
        f"GON {shared.gon_hidden}x{shared.gon_layers} --"
    )
    prep_seconds, assets = _timed(prepare_campaign_assets, shared)
    print(f"shared asset preparation (once): {prep_seconds:6.2f} s")

    results = {}
    timings = {}
    for backend in ("exact", "fast", "fast32"):
        config = replace(shared, scorer_backend=backend)
        seconds, result = _timed(run_campaign, config, prepared_assets=assets)
        results[backend] = result
        timings[backend] = seconds
        print(f"campaign, scorer_backend={backend:<7}: {seconds:6.2f} s")

    def digests(result) -> list:
        return [r.diagnostics.get("decision_digest") for r in result.records]

    identical = results["fast"].rows() == results["exact"].rows()
    fast_decisions = digests(results["fast"]) == digests(results["exact"])
    fast32_decisions = digests(results["fast32"]) == digests(results["exact"])
    assert identical, "fast-backend records diverged from the exact oracle"
    assert fast_decisions, "fast-backend decisions diverged from the oracle"

    fast_speedup = timings["exact"] / max(timings["fast"], 1e-9)
    fast32_speedup = timings["exact"] / max(timings["fast32"], 1e-9)
    print(
        f"speedups vs exact: fast {fast_speedup:.2f}x, "
        f"fast32 {fast32_speedup:.2f}x end-to-end "
        f"(records identical: {identical}; decisions: fast "
        f"{fast_decisions}, fast32 {fast32_decisions})"
    )
    return {
        "scenario": "paper-default",
        "model": shared.models[0],
        "n_runs": shared.n_seeds,
        "n_intervals": shared.n_intervals,
        "gon": f"{shared.gon_hidden}x{shared.gon_layers}",
        "exact_s": round(timings["exact"], 3),
        "fast_s": round(timings["fast"], 3),
        "fast32_s": round(timings["fast32"], 3),
        "fast_campaign_speedup": round(fast_speedup, 2),
        "fast32_campaign_speedup": round(fast32_speedup, 2),
        "records_identical_fast_vs_exact": identical,
        "decision_parity_fast_vs_exact": fast_decisions,
        # Informational (no parity marker): float32 tie-breaks on the
        # quick grid's under-trained GON may flip -- see docstring.
        "fast32_decision_agreement": fast32_decisions,
    }


# ----------------------------------------------------------------------
# --tcp: queue vs TCP transport head-to-head on the same fleet grid
# ----------------------------------------------------------------------
def run_tcp_bench(args: argparse.Namespace) -> dict:
    """Queue-transport vs TCP-transport fleet execution, bit-identity
    asserted -- the framing/socket overhead measured on localhost."""
    base = fleet_grid(args)
    queue_config = replace(base, mode="fleet", shared_assets=True)
    tcp_config = replace(queue_config, transport="tcp")
    print(
        f"\n-- transport bench: {queue_config.n_seeds} x "
        f"{queue_config.models[0]} on paper-default, "
        f"{queue_config.workers} workers, queue vs tcp --"
    )

    prep_seconds, assets = _timed(prepare_campaign_assets, queue_config)
    print(f"shared asset preparation (once)   : {prep_seconds:6.2f} s")

    queue_sink: list = []
    queue_seconds, queue_records = _timed(
        run_fleet_campaign,
        queue_config,
        plan_tasks(queue_config),
        assets,
        queue_sink,
    )
    print(f"fleet exec, queue transport       : {queue_seconds:6.2f} s")

    tcp_sink: list = []
    tcp_seconds, tcp_records = _timed(
        run_fleet_campaign,
        tcp_config,
        plan_tasks(tcp_config),
        assets,
        tcp_sink,
    )
    print(f"fleet exec, tcp transport (local) : {tcp_seconds:6.2f} s")

    queue_rows = CampaignResult(config=queue_config, records=queue_records).rows()
    tcp_rows = CampaignResult(config=tcp_config, records=tcp_records).rows()
    identical = queue_rows == tcp_rows
    assert identical, "tcp fleet records diverged from queue transport"

    ratio = queue_seconds / max(tcp_seconds, 1e-9)
    print(
        f"tcp/queue wall-clock ratio        : {ratio:.2f}x "
        f"(>1 means tcp was faster; framing overhead shows as <1); "
        f"records bit-identical: {identical}"
    )
    return {
        "scenario": "paper-default",
        "model": queue_config.models[0],
        "n_runs": queue_config.n_seeds,
        "workers": queue_config.workers,
        "n_intervals": queue_config.n_intervals,
        "queue_exec_s": round(queue_seconds, 3),
        "tcp_exec_s": round(tcp_seconds, 3),
        "tcp_vs_queue_speedup": round(ratio, 2),
        "bit_identical_tcp_vs_queue": identical,
        "service": {
            "queue_requests": queue_sink[0].n_requests,
            "tcp_requests": tcp_sink[0].n_requests,
            "queue_elements": queue_sink[0].n_elements,
            "tcp_elements": tcp_sink[0].n_elements,
        },
    }


# ----------------------------------------------------------------------
# --telemetry: instrumentation cost (enabled vs disabled registry)
# ----------------------------------------------------------------------
def run_telemetry_bench(args: argparse.Namespace) -> dict:
    """Wall-clock cost of the metrics registry on a serial campaign.

    Times the same grid with telemetry enabled and disabled,
    interleaved, taking the min of three runs per state (min, not
    mean: the lower envelope is the least noisy wall-clock estimator
    on a shared runner).  The serial heuristic grid keeps the timed
    path dominated by the instrumented hot loops (interval engine,
    tabu search) rather than offline GON training, and runs *longer*
    than the legacy smoke grid: an absolute 1.10x gate on a
    millisecond-scale measurement would be pure scheduler noise, so
    the grid is sized to keep each timed campaign comfortably above
    the timer's noise floor.
    """
    from repro import telemetry

    config = CampaignConfig(
        scenarios=("paper-default", "correlated-rack", "flash-crowd"),
        models=("dyverse",),
        n_seeds=3,
        seed=1,
        n_intervals=60 if args.quick else 100,
        workers=1,
    )
    print(
        f"\n-- telemetry overhead: {config.n_seeds * len(config.scenarios)}"
        f" runs x {config.n_intervals} intervals, serial --"
    )
    run_campaign(config)  # warm-up: allocator, import, BLAS threads

    enabled_times, disabled_times = [], []
    try:
        for _round in range(3):
            telemetry.set_enabled(True)
            enabled_times.append(_timed(run_campaign, config)[0])
            telemetry.set_enabled(False)
            disabled_times.append(_timed(run_campaign, config)[0])
    finally:
        telemetry.set_enabled(True)

    enabled_s = min(enabled_times)
    disabled_s = min(disabled_times)
    ratio = enabled_s / max(disabled_s, 1e-9)
    print(f"telemetry enabled  (min of {len(enabled_times)}): {enabled_s:6.3f} s")
    print(f"telemetry disabled (min of {len(disabled_times)}): {disabled_s:6.3f} s")
    print(f"overhead ratio (enabled/disabled)   : {ratio:.3f}x")
    return {
        "n_runs": config.n_seeds * len(config.scenarios),
        "n_intervals": config.n_intervals,
        "runs_per_state": 3,
        "enabled_s": round(enabled_s, 3),
        "disabled_s": round(disabled_s, 3),
        "telemetry_overhead_ratio": round(ratio, 3),
    }


# ----------------------------------------------------------------------
# Persistent surrogate-cache telemetry
# ----------------------------------------------------------------------
def cache_stats(
    scenario: str,
    scope: str,
    n_intervals: int,
    args: argparse.Namespace,
    seed: int = 7,
) -> dict:
    """Hit/miss telemetry of one CAROL run, split between fine-tunes."""
    spec = get_scenario(scenario)
    config = spec.compile(seed=seed, n_intervals=n_intervals)
    assets = prepare_assets(
        config,
        trace_intervals=args.trace_intervals,
        gon_hidden=args.gon_hidden,
        gon_layers=args.gon_layers,
        training=TrainingConfig(
            epochs=args.gon_epochs, batch_size=16, learning_rate=1e-3,
            generation_steps=20, seed=seed,
        ),
    )
    model = CAROL(
        assets.fresh_gon(),
        config.alpha,
        config.beta,
        CAROLConfig(seed=config.seed, score_cache_scope=scope),
    )
    # Per-interval counter deltas let us report per-generation windows.
    hits, misses = [], []
    repair = model.repair

    def instrumented(view, report, proposal):
        h0, m0 = model.diagnostics.cache_hits, model.diagnostics.cache_misses
        chosen = repair(view, report, proposal)
        hits.append(model.diagnostics.cache_hits - h0)
        misses.append(model.diagnostics.cache_misses - m0)
        return chosen

    model.repair = instrumented
    federation = EdgeFederation(config, topology=build_topology(spec))
    run_experiment(model, config, federation=federation, edge_slowdown=0.0)

    flushes = [i + 1 for i, f in enumerate(model.diagnostics.fine_tuned) if f]
    windows, start = [], 0
    for stop in [*flushes, len(hits)]:
        if stop > start:
            h, m = sum(hits[start:stop]), sum(misses[start:stop])
            windows.append({
                "intervals": [start, stop],
                "lookups": h + m,
                "hit_rate": round(h / (h + m), 3) if h + m else 0.0,
            })
            start = stop
    diag = model.diagnostics
    return {
        "scenario": scenario,
        "scope": scope,
        "n_intervals": n_intervals,
        "hits": diag.cache_hits,
        "misses": diag.cache_misses,
        "evictions": diag.cache_evictions,
        "hit_rate": round(diag.cache_hit_rate, 3),
        "fine_tunes": diag.n_fine_tunes,
        "windows_between_fine_tunes": windows,
    }


def run_cache_bench(args: argparse.Namespace) -> dict:
    # The scenario's own default evaluation length (20 for
    # paper-default) unless quick mode trims it.
    n_intervals = 15 if args.quick else 20
    print("\n-- persistent surrogate cache (hit rates between fine-tunes) --")
    results = {}
    probes = [
        ("paper-default", "context"),
        ("paper-default", "generation"),
        ("fault-free", "generation"),
    ]
    for scenario, scope in probes:
        stats = cache_stats(scenario, scope, n_intervals, args)
        results[f"{scenario}/{scope}"] = stats
        windows = ", ".join(
            f"[{a},{b}) {w['hit_rate']:.0%}"
            for w in stats["windows_between_fine_tunes"]
            for a, b in [w["intervals"]]
        )
        print(
            f"  {scenario:<14} scope={scope:<10} overall "
            f"{stats['hit_rate']:.1%}  windows: {windows}"
        )
    return results


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=(
            "examples: "
            "`bench_campaign.py --fleet` times reactive CAROL; "
            "`bench_campaign.py --fleet --proactive` sweeps the §VI "
            "ProactiveCAROL scheme through the scoring service, with "
            "per-client weight overlays keeping fine-tuned runs in "
            "the consolidated stream (zero local fallbacks asserted)."
        ),
    )
    parser.add_argument(
        "--fleet", action="store_true", help="run the process-vs-fleet CAROL head-to-head"
    )
    parser.add_argument(
        "--tcp",
        action="store_true",
        help="run the queue-vs-tcp transport head-to-head on the fleet grid (localhost sockets)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="measure the metrics-registry cost: the serial grid timed with "
        "telemetry enabled vs disabled (gated at 1.10x by check_regression.py)",
    )
    parser.add_argument(
        "--fast-backend",
        action="store_true",
        help="run the scorer-backend head-to-head (exact vs fast vs fast32 "
        "campaign timing, record + decision parity asserted)",
    )
    parser.add_argument(
        "--proactive",
        action="store_true",
        help="fleet bench sweeps CAROL-Proactive instead of reactive CAROL "
        "(POT gate opened early so fine-tuning + overlays are on the timed path)",
    )
    parser.add_argument("--quick", action="store_true", help="reduced sizes for CI smoke")
    parser.add_argument(
        "--runs",
        type=int,
        default=8,
        help="fleet bench: CAROL runs in the grid (>= 8 for the acceptance measurement)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--intervals", type=int, default=10)
    parser.add_argument("--trace-intervals", type=int, default=40)
    parser.add_argument("--gon-hidden", type=int, default=24)
    parser.add_argument("--gon-layers", type=int, default=2)
    parser.add_argument("--gon-epochs", type=int, default=6)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fleet: exit non-zero below this end-to-end speedup (0 disables)",
    )
    parser.add_argument(
        "--no-cache-bench", action="store_true", help="skip the surrogate-cache telemetry section"
    )
    parser.add_argument(
        "--json",
        type=str,
        default=_DEFAULT_JSON,
        help="write machine-readable results here (default: benchmarks/out/, kept out of "
        "the working tree; CI passes an explicit path)",
    )
    args = parser.parse_args(argv)
    if args.proactive:
        # The proactive sweep is a fleet-bench variant.
        args.fleet = True
    if args.quick:
        args.runs = min(args.runs, 8)
        # The POT gate needs >= pot_calibration (floor 5) observations
        # before it can open: the proactive quick bench keeps enough
        # intervals that fine-tuning -- and therefore the overlay path
        # -- genuinely lands on the timed path.
        args.intervals = min(args.intervals, 6 if args.proactive else 4)
        args.trace_intervals = min(args.trace_intervals, 16)
        args.gon_hidden = min(args.gon_hidden, 12)
        args.gon_epochs = min(args.gon_epochs, 2)

    payload = {
        "bench": "campaign",
        "quick": args.quick,
        "numpy": np.__version__,
    }
    if args.fleet:
        payload["fleet"] = run_fleet_bench(args)
        if not args.no_cache_bench:
            payload["cache"] = run_cache_bench(args)
    if args.tcp:
        payload["tcp"] = run_tcp_bench(args)
    if args.telemetry:
        payload["telemetry"] = run_telemetry_bench(args)
    if args.fast_backend:
        payload["fast_backend"] = run_fast_backend_bench(args)
    if (
        not args.fleet
        and not args.tcp
        and not args.telemetry
        and not args.fast_backend
    ):
        payload["serial_vs_process"] = run_legacy(args)

    os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
    with open(args.json, "w") as sink:
        json.dump(payload, sink, indent=2)
    print(f"\nwrote {args.json}")

    if args.fleet and args.min_speedup > 0:
        speedup = payload["fleet"]["speedup_vs_pr1"]
        if speedup < args.min_speedup:
            print(f"FAIL: fleet speedup {speedup:.2f}x below required {args.min_speedup}x")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
