"""CAROL vs. baselines: a miniature Fig. 5 comparison.

Trains the shared assets once, then runs CAROL against DYVERSE
(heuristic), FRAS (surrogate) and TopoMAD (reconstruction) on identical
workload and fault seeds, printing the six paper panels.

The full comparison (7 baselines + 4 ablations) lives in
``benchmarks/bench_fig5.py``; this example keeps the model set small so
it finishes in about a minute.

Run with:  python examples/carol_vs_baselines.py
"""

from repro.config import ci_scale
from repro.experiments import (
    Fig5Config,
    format_results,
    prepare_assets,
    run_fig5,
)


def main() -> None:
    base = ci_scale(seed=3)
    config = Fig5Config(
        base=base,
        trace_intervals=100,
        models=("CAROL", "DYVERSE", "FRAS", "TopoMAD"),
    )

    print("preparing shared assets (trace + offline GON training)...")
    assets = prepare_assets(
        base,
        trace_intervals=config.trace_intervals,
        gon_hidden=config.gon_hidden,
        gon_layers=config.gon_layers,
    )

    print(f"running {len(config.model_names())} resilience models over "
          f"{base.n_intervals} intervals each...\n")
    results = run_fig5(config, assets=assets)

    print(format_results(results))

    print("\nNote: values are absolute for this run; the `vs CAROL`")
    print("column mirrors the paper's relative-performance axes.")


if __name__ == "__main__":
    main()
