"""Scenario tour: run CAROL across three worlds and compare summaries.

The scenario catalog (``python -m repro scenarios list``) declares the
regimes the resilience model must survive; this tour runs CAROL on

1. ``paper-default``   -- the paper's uniform Poisson attack setup,
2. ``correlated-rack`` -- whole racks knocked out at once,
3. ``flash-crowd``     -- 4x gateway arrival surges,

with two seeds each, fanned over worker processes, and prints the tidy
campaign summary.  Results are bit-identical for any ``workers`` value
(per-run seeds descend from ``np.random.SeedSequence.spawn``).

Run with:  python examples/scenario_tour.py
"""

from repro.experiments import CampaignConfig, run_campaign
from repro.scenarios import get_scenario

SCENARIOS = ("paper-default", "correlated-rack", "flash-crowd")


def main() -> None:
    print("touring three scenarios:\n")
    for name in SCENARIOS:
        spec = get_scenario(name)
        print(f"  {name}: {spec.description}")

    config = CampaignConfig(
        scenarios=SCENARIOS,
        models=("carol",),
        n_seeds=2,
        workers=2,
        n_intervals=15,
    )
    print(f"\nrunning {len(SCENARIOS)} scenarios x CAROL x "
          f"{config.n_seeds} seeds on {config.workers} workers...\n")
    result = run_campaign(config)
    print(result.format_summary())

    aggregate = result.aggregate()
    baseline = aggregate[("paper-default", "CAROL")]["slo_violation_rate"][0]
    print("\nSLO violation rate vs paper-default:")
    for name in SCENARIOS[1:]:
        rate = aggregate[(name, "CAROL")]["slo_violation_rate"][0]
        delta = rate - baseline
        print(f"  {name:16s} {rate:.3f} ({delta:+.3f})")


if __name__ == "__main__":
    main()
