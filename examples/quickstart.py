"""Quickstart: train a GON offline and run CAROL on an edge federation.

The full paper pipeline in ~30 lines:

1. collect a DeFog execution trace on the co-simulator (§IV-D);
2. train the GON discriminator with Algorithm 1;
3. run CAROL (Algorithm 2) against fault-injected AIoT workloads;
4. print the headline QoS summary.

Run with:  python examples/quickstart.py
"""

from repro.config import ci_scale
from repro.experiments import build_model, prepare_assets, run_experiment


def main() -> None:
    config = ci_scale(seed=0)

    print("collecting DeFog trace and training the GON (Algorithm 1)...")
    assets = prepare_assets(config, trace_intervals=100)
    history = assets.training_history
    print(
        f"  trained {history.stopped_epoch} epochs: "
        f"loss {history.losses[0]:.3f} -> {history.losses[-1]:.3f}, "
        f"confidence {history.confidences[0]:.3f} -> {history.confidences[-1]:.3f}"
    )

    print("\nrunning CAROL on AIoT workloads with fault injection (Algorithm 2)...")
    carol = build_model("CAROL", assets, config)
    result = run_experiment(carol, config)

    summary = result.summary()
    print(f"\n== CAROL over {config.n_intervals} scheduling intervals ==")
    print(f"  energy consumption : {summary['energy_kwh']:.4f} kWh")
    print(f"  mean response time : {summary['response_time_s']:.1f} s")
    print(f"  SLO violation rate : {summary['slo_violation_rate']:.3f}")
    print(f"  mean decision time : {summary['decision_time_s'] * 1000:.1f} ms")
    print(f"  model memory       : {summary['memory_percent']:.4f} % of an 8 GB broker")
    print(f"  fine-tune overhead : {summary['fine_tune_overhead_s']:.2f} s total")
    print(
        f"  fine-tuned on {carol.diagnostics.n_fine_tunes} of "
        f"{config.n_intervals} intervals (POT-gated parsimony)"
    )


if __name__ == "__main__":
    main()
