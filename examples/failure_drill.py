"""Failure drill: the Fig. 1 node-shift story, step by step.

Builds the paper's 16-node / 4-LEI topology, kills a broker and shows
every repair family -- Type 1 (higher broker count), Type 2 (lower) and
Type 3 (same) -- with an ASCII rendering of each resulting topology,
then lets tabu search pick among them with a synthetic balance
objective.

Run with:  python examples/failure_drill.py
"""

import numpy as np

from repro import telemetry
from repro.core import (
    neighbours,
    repair_options,
    shift_type_1,
    shift_type_2,
    shift_type_3,
    tabu_search,
)
from repro.simulator import Topology, initial_topology


def render(topology: Topology, title: str) -> None:
    print(f"  {title}")
    for broker in sorted(topology.brokers):
        lei = topology.lei(broker)
        workers = " ".join(f"w{w}" for w in lei) or "(no workers)"
        print(f"    B{broker} -- {workers}")
    if topology.unattached:
        print(f"    unattached: {topology.unattached}")
    print()


def balance_objective(topology: Topology) -> float:
    """Synthetic objective: prefer evenly-sized LEIs, mildly prefer
    fewer brokers (management cost)."""
    sizes = list(topology.lei_sizes().values())
    return float(np.var(sizes)) + 0.1 * len(topology.brokers)


def main() -> None:
    topology = initial_topology(16, 4)
    print("== initial topology (paper testbed shape: 16 hosts, 4 LEIs) ==")
    render(topology, "G_t-1")

    failed = 1
    orphans = list(topology.lei(failed))
    stripped = topology.detach(failed)
    print(f"== broker B{failed} fails; workers {orphans} are orphaned ==\n")

    print("== Type 1: two orphans promoted, broker count +1 ==")
    render(shift_type_1(stripped, orphans)[0], "one Type-1 option")

    print("== Type 2: orphans merged into an existing broker, count -1 ==")
    render(shift_type_2(stripped, orphans)[0], "one Type-2 option")

    print("== Type 3: one orphan promoted, count unchanged ==")
    render(shift_type_3(stripped, orphans)[0], "one Type-3 option")

    options = repair_options(stripped, orphans)
    print(f"full repair neighbourhood N(G, b): {len(options)} topologies\n")

    print("== tabu search over the neighbourhood (balance objective) ==")
    result = tabu_search(
        options[0],
        objective=balance_objective,
        neighbourhood=neighbours,
        tabu_size=100,
        max_iterations=10,
    )
    print(
        f"  evaluated {result.n_evaluations} candidates over "
        f"{result.n_iterations} iterations; best score {result.best_score:.3f}"
    )
    render(result.best, "repaired topology G_t")

    # The search above ran against the instrumented tabu module: the
    # process-wide registry already holds its counters and timing span.
    print(telemetry.render_summary(
        telemetry.snapshot(), title="-- drill telemetry --"
    ))


if __name__ == "__main__":
    main()
