"""Sensitivity sweep: a miniature Fig. 6(a)/(c).

Sweeps the eq.-1 ascent step size gamma and the tabu-list size,
printing the paper's four series (MSE, decision time, energy, SLO
violation rate) for each point.  Demonstrates the trade-off §V-E
discusses: small gammas converge slowly (time up), large ones overshoot
(MSE and QoS degrade); bigger tabu lists buy QoS with search time.

Run with:  python examples/sensitivity_sweep.py
"""

from repro.config import ci_scale
from repro.experiments import (
    Fig6Config,
    format_sweep,
    prepare_assets,
    run_learning_rate_sweep,
    run_tabu_sweep,
)


def main() -> None:
    config = Fig6Config(
        base=ci_scale(seed=4),
        eval_intervals=10,
        trace_intervals=80,
        gon_hidden=32,
        gon_layers=2,
    )

    print("preparing shared assets...")
    assets = prepare_assets(
        config.base,
        trace_intervals=config.trace_intervals,
        gon_hidden=config.gon_hidden,
        gon_layers=config.gon_layers,
    )

    print("\nsweeping gamma (Fig. 6a)...")
    lr_points = run_learning_rate_sweep(
        config, assets=assets, grid=(1e-4, 1e-3, 1e-2, 1e-1)
    )
    print(format_sweep("-- learning-rate sensitivity --", "gamma", lr_points))

    print("\nsweeping tabu list size (Fig. 6c)...")
    tabu_points = run_tabu_sweep(config, assets=assets, grid=(5, 50, 500))
    print(format_sweep("-- tabu-list-size sensitivity --", "tabu size", tabu_points))


if __name__ == "__main__":
    main()
