"""Train the GON on DeFog traces and persist it (the §IV-D/E pipeline).

Collects the execution trace Λ = {M_t, S_t, G_t} (DeFog workloads,
topology shuffled every ten intervals), trains the discriminator with
Algorithm 1, prints the Fig. 4 curves as sparklines, and saves both the
trace (npz) and the trained weights for later runs.

Run with:  python examples/train_gon_defog.py
"""

import os

import numpy as np

from repro.config import ci_scale
from repro.core import GONDiscriminator, GONInput, TrainingConfig, train_gon
from repro.core.nodeshift import random_node_shift
from repro.experiments import sparkline
from repro.experiments.calibration import defog_config
from repro.nn import save_module
from repro.simulator import collect_trace

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    config = defog_config(ci_scale(seed=1))

    print("collecting DeFog trace (topology mutated every 10 intervals)...")
    trace = collect_trace(
        config,
        n_intervals=150,
        topology_mutator=random_node_shift,
        mutate_every=10,
    )
    print(f"  {len(trace)} samples across {trace.n_topologies} distinct topologies")

    samples = [GONInput(s.metrics, s.schedule, s.adjacency) for s in trace.samples]
    model = GONDiscriminator(np.random.default_rng(1), hidden=48, n_layers=3)
    print(f"\nGON: {model.parameter_count()} parameters "
          f"({model.footprint_bytes() / 1024 ** 2:.2f} MB resident)")

    print("training with Algorithm 1 (adversarial, generator-free)...")
    history = train_gon(
        model,
        samples,
        TrainingConfig(epochs=12, batch_size=16, learning_rate=1e-3, seed=1),
    )

    print(f"\n== training curves ({history.stopped_epoch} epochs, "
          f"{history.wall_seconds:.1f}s) ==")
    print(f"  loss      : {sparkline(history.losses)}   "
          f"{history.losses[0]:.3f} -> {history.losses[-1]:.3f}")
    print(f"  MSE       : {sparkline(history.mses)}   "
          f"{history.mses[0]:.4f} -> {history.mses[-1]:.4f}")
    print(f"  confidence: {sparkline(history.confidences)}   "
          f"{history.confidences[0]:.3f} -> {history.confidences[-1]:.3f}")

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    trace_path = os.path.join(OUTPUT_DIR, "defog_trace.npz")
    model_path = os.path.join(OUTPUT_DIR, "gon_defog.npz")
    trace.save(trace_path)
    save_module(model, model_path)
    print(f"\nsaved trace to {trace_path}")
    print(f"saved GON weights to {model_path}")


if __name__ == "__main__":
    main()
