"""Legacy setup shim.

The sandbox has no network and no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build; ``python
setup.py develop`` installs the same editable egg-link without
needing a wheel. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
